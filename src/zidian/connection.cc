#include "zidian/connection.h"

#include <algorithm>
#include <chrono>
#include <memory>

#include "kba/kba_executor.h"
#include "kba/makespan.h"
#include "ra/eval.h"

namespace zidian {

ThreadPool* SharedPoolState::GetOrCreate(int num_threads) {
  MutexLock lock(mu_);
  if (pool_ == nullptr || pool_->num_threads() < num_threads) {
    // Growth retires the old pool instead of destroying it: destruction
    // joins the pool's threads, and a concurrent Execute on another
    // session may still be mid-ParallelFor on that pointer. The common
    // case (a fixed workers count per session) never re-enters.
    if (pool_ != nullptr) retired_.push_back(std::move(pool_));
    pool_ = std::make_unique<ThreadPool>(num_threads);
  }
  return pool_.get();
}

Status PreparedQuery::Plan() {
  // M1: can the query be answered on the BaaV store at all?
  ZIDIAN_ASSIGN_OR_RETURN(
      PreservationReport preserve,
      CheckResultPreserving(spec_, zidian_->catalog(),
                            zidian_->store().schema()));
  preserving_ = preserve.preserving;
  preserve_detail_ = preserve.detail;
  last_info_ = AnswerInfo{};
  last_info_.result_preserving = preserving_;
  last_info_.cache_enabled = zidian_->cluster().cache_enabled();
  last_info_.cache_capacity_bytes = zidian_->cluster().cache_capacity_bytes();
  if (const NetworkModel* net = zidian_->cluster().network()) {
    last_info_.network_enabled = true;
    last_info_.network_text = net->ToString();
    last_info_.fault_text = net->FaultText();
    last_info_.replication_text = zidian_->cluster().recovery().ToString();
  }
  if (!preserving_) {
    last_info_.route = AnswerInfo::Route::kTaavFallback;
    last_info_.detail = preserve_detail_;
    return Status::OK();
  }

  // M2: plan generation (scan-free / bounded when the query is).
  ZIDIAN_ASSIGN_OR_RETURN(
      PlannedQuery planned,
      GenerateKbaPlan(spec_, zidian_->catalog(), zidian_->store(),
                      zidian_->options().planner));
  plan_text_ = planned.plan->ToString();
  last_info_.scan_free = planned.scan_free;
  last_info_.bounded = planned.bounded;
  last_info_.stats_pushdown = planned.stats_pushdown;
  last_info_.plan_text = plan_text_;
  last_info_.route = planned.scan_free ? AnswerInfo::Route::kKbaScanFree
                                       : AnswerInfo::Route::kKbaWithScans;
  planned_ = std::move(planned);
  return Status::OK();
}

Result<Relation> PreparedQuery::Execute(const ExecOptions& opts,
                                        AnswerInfo* info) {
  AnswerInfo local;
  AnswerInfo* out = info != nullptr ? info : &local;
  *out = AnswerInfo{};
  out->result_preserving = preserving_;
  int workers = std::max(1, opts.workers);

  if (opts.route_policy == RoutePolicy::kForceKba && !preserving_) {
    return Status::InvalidArgument("query is not result preserving: " +
                                   preserve_detail_);
  }
  bool use_baseline =
      opts.route_policy == RoutePolicy::kForceBaseline || !preserving_;

  // Scope the cache bypass to this execution; the previous cluster state
  // is restored on every exit path. The flag is only touched when this
  // run actually changes it: concurrent sessions executing with default
  // options must not write shared cluster state at all (bypass_cache
  // itself stays a single-session experiment knob — the flag it toggles
  // is cluster-global and would leak into concurrent queries).
  Cluster& cluster = zidian_->cluster();
  struct BypassScope {
    Cluster* cluster;
    bool previous;
    bool changed;
    ~BypassScope() {
      if (changed) cluster->SetCacheBypass(previous);
    }
  } bypass_scope{&cluster, cluster.cache_bypassed(),
                 opts.bypass_cache != cluster.cache_bypassed()};
  if (bypass_scope.changed) cluster.SetCacheBypass(opts.bypass_cache);
  out->cache_enabled = cluster.cache_enabled();
  out->cache_capacity_bytes = cluster.cache_capacity_bytes();
  out->cache_bypassed = opts.bypass_cache;
  if (const NetworkModel* net = cluster.network()) {
    out->network_enabled = true;
    out->network_text = net->ToString();
    out->fault_text = net->FaultText();
    out->replication_text = cluster.recovery().ToString();
  }

  // Resolve the thread source once for whichever route runs. kThreads at
  // workers <= 1 is the simulated path by construction (one worker on the
  // calling thread), so the *effective* mode is what Explain() reports.
  const bool threaded =
      opts.parallel_mode == ParallelMode::kThreads && workers > 1;
  out->parallel_mode =
      threaded ? ParallelMode::kThreads : ParallelMode::kSimulated;
  ThreadPool* pool = nullptr;
  std::unique_ptr<ThreadPool> per_call_pool;
  if (threaded) {
    if (opts.pool != nullptr) {
      pool = opts.pool;
    } else if (pool_state_ != nullptr) {
      pool = pool_state_->GetOrCreate(workers - 1);
      out->used_shared_pool = true;
    } else {
      per_call_pool = std::make_unique<ThreadPool>(workers - 1);
      pool = per_call_pool.get();
    }
  }

  // The prepared plan's shape survives in the info even when this run is
  // forced down the baseline, so Explain() keeps describing the plan.
  if (preserving_) {
    out->scan_free = planned_->scan_free;
    out->bounded = planned_->bounded;
    out->stats_pushdown = planned_->stats_pushdown;
    out->plan_text = plan_text_;
  }

  Result<Relation> result = Relation();
  auto start = std::chrono::steady_clock::now();
  if (use_baseline) {
    out->route = AnswerInfo::Route::kTaavFallback;
    out->detail = preserving_ ? "route policy forced the TaaV baseline"
                              : preserve_detail_;
    result = zidian_->AnswerBaseline(
        spec_,
        TaavExecOptions{.workers = workers,
                        .parallel_mode = out->parallel_mode,
                        .pool = pool,
                        .fanout = opts.fanout},
        &out->metrics);
  } else {
    out->route = planned_->scan_free ? AnswerInfo::Route::kKbaScanFree
                                     : AnswerInfo::Route::kKbaWithScans;
    result = ExecuteKba(workers, out->parallel_mode, pool, opts.fanout, out);
  }
  out->metrics.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  if (!result.ok()) {
    // Graceful degradation: a query whose retries are exhausted (or that
    // failed anywhere else mid-execution) fails cleanly with a structured
    // error. The AnswerInfo still carries everything metered up to the
    // failure, plus the failure itself — the serving layer merges these
    // so failed_queries and the net_* fault counters stay visible.
    out->metrics.failed_queries += 1;
    out->detail = result.status().ToString();
  }
  if (result.ok() && opts.backend_profile != nullptr) {
    out->sim_seconds = SimSeconds(out->metrics, *opts.backend_profile);
  }
  last_info_ = *out;
  return result;
}

Result<Relation> PreparedQuery::ExecuteKba(int workers, ParallelMode mode,
                                           ThreadPool* pool,
                                           FanoutMode fanout,
                                           AnswerInfo* out) {
  // M3: interleaved parallel execution.
  KbaExecutor executor(&zidian_->store());
  ZIDIAN_ASSIGN_OR_RETURN(
      KvInst chain,
      executor.Execute(*planned_->plan,
                       KbaExecOptions{.workers = workers,
                                      .parallel_mode = mode,
                                      .pool = pool,
                                      .fanout = fanout},
                       &out->metrics));

  Relation result;
  if (planned_->stats_pushdown) {
    // The plan already aggregated from block statistics.
    result = std::move(chain.rel);
    ZIDIAN_RETURN_NOT_OK(OrderAndLimit(planned_->exec_spec.order_by,
                                       planned_->exec_spec.limit, &result));
  } else {
    ZIDIAN_ASSIGN_OR_RETURN(
        result, FinishQuery(chain.rel, planned_->exec_spec, &out->metrics,
                            pool, workers));
  }

  // Refresh per-worker makespans with the post-aggregation compute counts,
  // through the same helper the executor uses — the simulated and
  // threaded paths share one makespan arithmetic by construction.
  SpreadMakespans(workers, &out->metrics);
  return result;
}

Result<PreparedQuery> Connection::Prepare(const std::string& sql) {
  ZIDIAN_ASSIGN_OR_RETURN(QuerySpec spec,
                          ParseAndBind(sql, zidian_->catalog()));
  return PrepareSpec(spec);
}

Result<PreparedQuery> Connection::PrepareSpec(const QuerySpec& spec) {
  PreparedQuery q(zidian_, spec);
  q.pool_state_ = pool_state_;  // outlives the Connection if need be
  ZIDIAN_RETURN_NOT_OK(q.Plan());
  return q;
}

Result<Relation> Connection::Execute(const std::string& sql,
                                     const ExecOptions& opts,
                                     AnswerInfo* info) {
  ZIDIAN_ASSIGN_OR_RETURN(PreparedQuery q, Prepare(sql));
  return q.Execute(opts, info);
}

}  // namespace zidian
