// Module M1 (§5.2): preservation checks.
//
//  * clo(~R, ~R): the attribute closure of a KV schema within the KV schemas
//    of its relation — start from att(~R) and add att(~R') whenever the key
//    of ~R' is already contained (Condition I's inductive definition). The
//    paper's rule (2) chases pk(~R'); we chase the declared primary key when
//    present and the key attributes X otherwise, which keeps every closure
//    step executable as an extension ∝ (see DESIGN.md, substitution table).
//
//  * Condition I — data preservability: every relation R has a KV schema
//    whose closure equals att(R). Sufficient and necessary (Theorem 1).
//
//  * Condition II — result preservability for an SPC query Q: every relation
//    in min(Q) has a KV schema whose closure contains X^{min(Q)}_R
//    (Theorem 2). Extended to RA_aggr queries through their unique max SPC
//    sub-query (Theorem 3).
#ifndef ZIDIAN_ZIDIAN_PRESERVATION_H_
#define ZIDIAN_ZIDIAN_PRESERVATION_H_

#include <set>
#include <string>

#include "baav/kv_schema.h"
#include "common/result.h"
#include "ra/spc.h"
#include "relational/schema.h"
#include "sql/query_spec.h"

namespace zidian {

/// clo(~start, schemas of the same relation in `all`).
std::set<std::string> Closure(const KvSchema& start, const BaavSchema& all);

struct PreservationReport {
  bool preserving = false;
  std::string detail;  ///< which relation/alias failed and why
};

/// Condition I: is `baav` data preserving for every relation in `catalog`?
PreservationReport CheckDataPreserving(const Catalog& catalog,
                                       const BaavSchema& baav);

/// Condition II on an already-minimized SPC core.
PreservationReport CheckResultPreserving(const MinimizedSPC& min_spc,
                                         const BaavSchema& baav);

/// Convenience: minimize the SPC core of `spec`, then apply Condition II
/// (the Theorem 3 route for RA_aggr queries in our SQL subset, whose SPC
/// core is the unique max SPC sub-query).
Result<PreservationReport> CheckResultPreserving(const QuerySpec& spec,
                                                 const Catalog& catalog,
                                                 const BaavSchema& baav);

}  // namespace zidian

#endif  // ZIDIAN_ZIDIAN_PRESERVATION_H_
