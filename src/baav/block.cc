#include "baav/block.h"

#include <algorithm>
#include <cstring>
#include <map>

#include "common/coding.h"

namespace zidian {

namespace {
constexpr uint64_t kFlagCompressed = 1;
constexpr uint64_t kFlagStats = 2;

void PutDouble(std::string* dst, double d) {
  uint64_t bits;
  std::memcpy(&bits, &d, 8);
  PutFixed64(dst, bits);
}

bool GetDouble(std::string_view* src, double* d) {
  uint64_t bits;
  if (!GetFixed64(src, &bits)) return false;
  std::memcpy(d, &bits, 8);
  return true;
}
}  // namespace

std::string EncodeBlock(const std::vector<Tuple>& rows, size_t arity,
                        const BlockOptions& options) {
  std::string out;
  // Statistics headers only pay off when they summarize several tuples; for
  // near-singleton blocks (degree-1 instances) the header would outweigh
  // the data, so it is omitted and readers recompute on demand.
  bool with_stats = options.stats && rows.size() >= 4;
  uint64_t flags = (options.compress ? kFlagCompressed : 0) |
                   (with_stats ? kFlagStats : 0);
  PutVarint64(&out, flags);
  PutVarint64(&out, rows.size());

  // Entry list (and counts if compressing).
  std::vector<std::pair<const Tuple*, uint64_t>> entries;
  std::map<std::string, size_t> seen;  // payload -> entry index
  std::vector<std::string> payloads;
  if (options.compress) {
    for (const auto& row : rows) {
      std::string payload;
      EncodeTuplePayload(row, &payload);
      auto [it, inserted] = seen.emplace(std::move(payload), entries.size());
      if (inserted) {
        entries.emplace_back(&row, 1);
      } else {
        entries[it->second].second += 1;
      }
    }
    payloads.resize(entries.size());
    for (const auto& [payload, idx] : seen) payloads[idx] = payload;
  } else {
    for (const auto& row : rows) {
      entries.emplace_back(&row, 1);
      std::string payload;
      EncodeTuplePayload(row, &payload);
      payloads.push_back(std::move(payload));
    }
  }
  PutVarint64(&out, entries.size());

  if (with_stats) {
    std::vector<BlockColumnStats> cols(arity);
    for (const auto& row : rows) {
      for (size_t c = 0; c < arity && c < row.size(); ++c) {
        const Value& v = row[c];
        if (!v.IsNumeric()) continue;
        auto& s = cols[c];
        double d = v.Numeric();
        if (s.count == 0) {
          s.min = d;
          s.max = d;
        } else {
          s.min = std::min(s.min, d);
          s.max = std::max(s.max, d);
        }
        s.sum += d;
        s.count += 1;
        s.numeric = true;
      }
    }
    for (const auto& s : cols) {
      out.push_back(s.numeric ? 1 : 0);
      if (!s.numeric) continue;
      PutVarint64(&out, s.count);
      PutDouble(&out, s.min);
      PutDouble(&out, s.max);
      PutDouble(&out, s.sum);
    }
  }

  for (size_t i = 0; i < entries.size(); ++i) {
    out += payloads[i];
    if (options.compress) PutVarint64(&out, entries[i].second);
  }
  return out;
}

namespace {

Status DecodeHeader(std::string_view* sv, uint64_t* flags,
                    uint64_t* row_count, uint64_t* entry_count) {
  if (!GetVarint64(sv, flags) || !GetVarint64(sv, row_count) ||
      !GetVarint64(sv, entry_count)) {
    return Status::Corruption("bad block header");
  }
  return Status::OK();
}

Status DecodeStatsSection(std::string_view* sv, size_t arity,
                          BlockStats* out) {
  out->columns.assign(arity, BlockColumnStats{});
  for (size_t c = 0; c < arity; ++c) {
    if (sv->empty()) return Status::Corruption("truncated stats");
    bool numeric = sv->front() != 0;
    sv->remove_prefix(1);
    if (!numeric) continue;
    auto& s = out->columns[c];
    s.numeric = true;
    if (!GetVarint64(sv, &s.count) || !GetDouble(sv, &s.min) ||
        !GetDouble(sv, &s.max) || !GetDouble(sv, &s.sum)) {
      return Status::Corruption("truncated stats column");
    }
  }
  return Status::OK();
}

}  // namespace

Status DecodeBlock(std::string_view data, size_t arity,
                   std::vector<Tuple>* rows) {
  std::string_view sv = data;
  uint64_t flags, row_count, entry_count;
  ZIDIAN_RETURN_NOT_OK(DecodeHeader(&sv, &flags, &row_count, &entry_count));
  if (flags & kFlagStats) {
    BlockStats scratch;
    ZIDIAN_RETURN_NOT_OK(DecodeStatsSection(&sv, arity, &scratch));
  }
  rows->clear();
  // The header's row_count is untrusted input: reserve at most one row per
  // payload byte (an encoded tuple is never empty), so a corrupt header
  // cannot demand an arbitrary up-front allocation. Honest blocks still get
  // a full reservation — compressed blocks at worst regrow.
  rows->reserve(std::min<uint64_t>(row_count, data.size()));
  for (uint64_t i = 0; i < entry_count; ++i) {
    Tuple t;
    if (!DecodeTuplePayload(&sv, arity, &t)) {
      return Status::Corruption("bad block entry");
    }
    uint64_t mult = 1;
    if (flags & kFlagCompressed) {
      if (!GetVarint64(&sv, &mult)) return Status::Corruption("bad count");
      // Validate before replicating, not after: a corrupt multiplicity must
      // fail here rather than materialize up to 2^64 copies first and only
      // then trip the row-count check below.
      if (mult == 0 || mult > row_count - rows->size()) {
        return Status::Corruption("bad block multiplicity");
      }
    }
    for (uint64_t k = 1; k < mult; ++k) rows->push_back(t);
    rows->push_back(std::move(t));
  }
  if (rows->size() != row_count) {
    return Status::Corruption("block row count mismatch");
  }
  return Status::OK();
}

Status DecodeBlockStats(std::string_view data, size_t arity,
                        BlockStats* out) {
  std::string_view sv = data;
  uint64_t flags, row_count, entry_count;
  ZIDIAN_RETURN_NOT_OK(DecodeHeader(&sv, &flags, &row_count, &entry_count));
  out->row_count = row_count;
  if (!(flags & kFlagStats)) {
    // Small blocks omit the header (see EncodeBlock): recompute from the
    // tuples — still cheap, the block is tiny by construction.
    std::vector<Tuple> rows;
    ZIDIAN_RETURN_NOT_OK(DecodeBlock(data, arity, &rows));
    out->columns.assign(arity, BlockColumnStats{});
    for (const auto& row : rows) {
      for (size_t c = 0; c < arity && c < row.size(); ++c) {
        if (!row[c].IsNumeric()) continue;
        auto& s = out->columns[c];
        double d = row[c].Numeric();
        if (s.count == 0) {
          s.min = d;
          s.max = d;
        } else {
          s.min = std::min(s.min, d);
          s.max = std::max(s.max, d);
        }
        s.sum += d;
        s.count += 1;
        s.numeric = true;
      }
    }
    return Status::OK();
  }
  return DecodeStatsSection(&sv, arity, out);
}

Result<uint64_t> BlockRowCount(std::string_view data) {
  std::string_view sv = data;
  uint64_t flags, row_count, entry_count;
  ZIDIAN_RETURN_NOT_OK(DecodeHeader(&sv, &flags, &row_count, &entry_count));
  return row_count;
}

}  // namespace zidian
