#include "baav/baav_store.h"

#include <algorithm>
#include <unordered_map>

#include "common/coding.h"

namespace zidian {

BaavStore::BaavStore(Cluster* cluster, BaavSchema schema,
                     const Catalog* catalog, BaavStoreOptions options)
    : cluster_(cluster),
      schema_(std::move(schema)),
      catalog_(catalog),
      options_(options) {}

std::string BaavStore::InstancePrefix(const KvSchema& kv) const {
  std::string key = "B";
  EncodeOrderedString(&key, kv.name);
  return key;
}

std::string BaavStore::SegmentKey(const KvSchema& kv, const Tuple& key,
                                  uint64_t segment) const {
  std::string k = InstancePrefix(kv);
  k += EncodeKeyTuple(key);
  EncodeOrderedInt64(&k, static_cast<int64_t>(segment));
  return k;
}

Result<Tuple> BaavStore::ProjectTuple(
    const KvSchema& kv, const Tuple& tuple,
    const std::vector<std::string>& attrs) const {
  ZIDIAN_ASSIGN_OR_RETURN(TableSchema rel, catalog_->Get(kv.relation));
  Tuple out;
  out.reserve(attrs.size());
  for (const auto& a : attrs) {
    int i = rel.ColumnIndex(a);
    if (i < 0) {
      return Status::InvalidArgument("attribute " + a + " not in " +
                                     kv.relation);
    }
    if (static_cast<size_t>(i) >= tuple.size()) {
      return Status::InvalidArgument("tuple arity mismatch for " +
                                     kv.relation);
    }
    out.push_back(tuple[static_cast<size_t>(i)]);
  }
  return out;
}

Status BaavStore::WriteBlock(const KvSchema& kv, const Tuple& key,
                             const std::vector<Tuple>& rows) {
  // Determine the previous segment count so stale segments get deleted.
  // kNoFill: this is internal bookkeeping, not a query read — letting its
  // misses plant negative entries would make every bulk-build Put an
  // install (Cluster::Put upgrades negatives), silently pre-warming the
  // whole cache during load.
  uint64_t old_segments = 0;
  {
    auto res =
        cluster_->Get(SegmentKey(kv, key, 0), nullptr, CacheFill::kNoFill);
    if (res.ok()) {
      std::string_view sv = res.value();
      GetVarint64(&sv, &old_segments);
    } else if (!res.status().IsNotFound()) {
      // An unreachable probe is NOT an absent block: proceeding with
      // old_segments = 0 would leave stale overflow segments behind.
      // Maintenance fails cleanly instead of corrupting the instance.
      return res.status();
    }
  }

  if (rows.empty()) {
    for (uint64_t s = 0; s < old_segments; ++s) {
      ZIDIAN_RETURN_NOT_OK(cluster_->Delete(SegmentKey(kv, key, s)));
    }
    return Status::OK();
  }

  // Split rows into segments so each encoded segment stays under the
  // threshold. Estimate rows per segment from average tuple size.
  size_t arity = kv.value_attrs.size();
  size_t total_bytes = 0;
  for (const auto& r : rows) total_bytes += TupleByteSize(r) + 2;
  size_t threshold = std::max<size_t>(options_.block_split_threshold_bytes, 64);
  size_t num_segments = (total_bytes + threshold - 1) / threshold;
  num_segments = std::max<size_t>(num_segments, 1);
  size_t per_segment = (rows.size() + num_segments - 1) / num_segments;

  uint64_t seg = 0;
  for (size_t start = 0; start < rows.size(); start += per_segment, ++seg) {
    size_t end = std::min(rows.size(), start + per_segment);
    std::vector<Tuple> part(rows.begin() + static_cast<long>(start),
                            rows.begin() + static_cast<long>(end));
    std::string value;
    if (seg == 0) PutVarint64(&value, num_segments);
    value += EncodeBlock(part, arity, options_.block);
    ZIDIAN_RETURN_NOT_OK(cluster_->Put(SegmentKey(kv, key, seg), value));
  }
  for (uint64_t s = seg; s < old_segments; ++s) {
    ZIDIAN_RETURN_NOT_OK(cluster_->Delete(SegmentKey(kv, key, s)));
  }

  auto& deg = degree_[kv.name];
  deg = std::max<uint64_t>(deg, rows.size());
  return Status::OK();
}

Status BaavStore::BuildInstance(const KvSchema& kv, const Relation& data) {
  ZIDIAN_ASSIGN_OR_RETURN(TableSchema rel, catalog_->Get(kv.relation));
  // Column indexes of X and Y in the relation layout.
  std::vector<int> xidx, yidx;
  for (const auto& a : kv.key_attrs) {
    int i = data.ColumnIndex(a);
    if (i < 0) return Status::InvalidArgument("missing key attr " + a);
    xidx.push_back(i);
  }
  for (const auto& a : kv.value_attrs) {
    int i = data.ColumnIndex(a);
    if (i < 0) return Status::InvalidArgument("missing value attr " + a);
    yidx.push_back(i);
  }
  // Group by X (the mapping of §4.1: project on XY, group by X). Bag
  // semantics are preserved; the block codec compresses duplicates.
  std::unordered_map<Tuple, std::vector<Tuple>, TupleHasher> groups;
  for (const auto& row : data.rows()) {
    Tuple x, y;
    x.reserve(xidx.size());
    y.reserve(yidx.size());
    for (int i : xidx) x.push_back(row[static_cast<size_t>(i)]);
    for (int i : yidx) y.push_back(row[static_cast<size_t>(i)]);
    groups[std::move(x)].push_back(std::move(y));
  }
  uint64_t deg = 0;
  for (auto& [key, rows] : groups) {
    deg = std::max<uint64_t>(deg, rows.size());
    ZIDIAN_RETURN_NOT_OK(WriteBlock(kv, key, rows));
  }
  degree_[kv.name] = deg;
  return Status::OK();
}

Status BaavStore::BuildAll(const std::map<std::string, Relation>& db) {
  for (const auto& kv : schema_.all()) {
    auto it = db.find(kv.relation);
    if (it == db.end()) {
      return Status::InvalidArgument("no data for relation " + kv.relation);
    }
    ZIDIAN_RETURN_NOT_OK(BuildInstance(kv, it->second));
  }
  return Status::OK();
}

Result<std::vector<Tuple>> BaavStore::GetBlock(const KvSchema& kv,
                                               const Tuple& key,
                                               QueryMetrics* m) const {
  std::vector<Tuple> rows;
  auto first = cluster_->Get(SegmentKey(kv, key, 0), m);
  if (!first.ok()) {
    // Absent key: empty block. Anything else (an unreachable node after
    // exhausted retries) must propagate — an error is not an empty block.
    if (first.status().IsNotFound()) return rows;
    return first.status();
  }
  std::string_view sv = first.value();
  uint64_t segments = 0;
  if (!GetVarint64(&sv, &segments) || segments == 0) {
    return Status::Corruption("bad segment header in " + kv.name);
  }
  ZIDIAN_RETURN_NOT_OK(DecodeBlock(sv, kv.value_attrs.size(), &rows));
  for (uint64_t s = 1; s < segments; ++s) {
    ZIDIAN_ASSIGN_OR_RETURN(std::string data,
                            cluster_->Get(SegmentKey(kv, key, s), m));
    std::vector<Tuple> part;
    ZIDIAN_RETURN_NOT_OK(DecodeBlock(data, kv.value_attrs.size(), &part));
    rows.insert(rows.end(), std::make_move_iterator(part.begin()),
                std::make_move_iterator(part.end()));
  }
  if (m != nullptr) {
    m->values_accessed += rows.size() * kv.value_attrs.size() + key.size();
  }
  return rows;
}

namespace {

/// Combines one segment's statistics into the block total.
void MergeBlockStats(BlockStats* total, const BlockStats& part, size_t arity) {
  total->row_count += part.row_count;
  for (size_t c = 0; c < arity; ++c) {
    const auto& s = part.columns[c];
    if (!s.numeric) continue;
    auto& t = total->columns[c];
    if (t.count == 0) {
      t = s;
    } else {
      t.min = std::min(t.min, s.min);
      t.max = std::max(t.max, s.max);
      t.sum += s.sum;
      t.count += s.count;
    }
    t.numeric = true;
  }
}

}  // namespace

namespace {

/// Transfers a stats fetch's scratch meter into the caller's metrics. A
/// stats read ships only header-sized payloads, so the cluster's full
/// pair-byte charges are replaced by `header_bytes` per segment — served
/// from the cache for the segments that hit (no comm), from storage for
/// the rest. Round trips, cache hits/misses/evictions and the batched
/// round-trip savings carry over unchanged.
void ChargeStatsFetch(const QueryMetrics& scratch, uint64_t segments_fetched,
                      size_t arity, QueryMetrics* m) {
  if (m == nullptr) return;
  uint64_t header_bytes = 16 + arity * 26;
  uint64_t hit_segments = std::min<uint64_t>(scratch.cache_hits,
                                             segments_fetched);
  m->get_calls += segments_fetched;
  m->get_round_trips += scratch.get_round_trips;
  m->multiget_calls += scratch.multiget_calls;
  m->cache_hits += scratch.cache_hits;
  m->cache_misses += scratch.cache_misses;
  m->cache_evictions += scratch.cache_evictions;
  m->bytes_from_cache += hit_segments * header_bytes;
  m->bytes_from_storage += (segments_fetched - hit_segments) * header_bytes;
  m->values_accessed += segments_fetched * arity;
}

}  // namespace

Result<BlockStats> BaavStore::GetBlockStats(const KvSchema& kv,
                                            const Tuple& key,
                                            QueryMetrics* m) const {
  size_t arity = kv.value_attrs.size();
  BlockStats total;
  total.columns.assign(arity, BlockColumnStats{});
  // Fetch through a scratch meter (header-sized payloads only; see
  // ChargeStatsFetch) so cache hits and saved round trips are preserved.
  // kNoFill: a stats read is charged header bytes, so its misses must not
  // plant the full block in the cache for later reads to get "for free".
  QueryMetrics scratch;
  uint64_t segments_fetched = 0;
  auto first =
      cluster_->Get(SegmentKey(kv, key, 0), &scratch, CacheFill::kNoFill);
  if (!first.ok()) {
    // Absent: zero rows, nothing charged. Unreachable: propagate — stats
    // of a block we could not read are not "zero rows".
    if (first.status().IsNotFound()) return total;
    return first.status();
  }
  std::string_view sv = first.value();
  uint64_t segments = 0;
  if (!GetVarint64(&sv, &segments) || segments == 0) {
    return Status::Corruption("bad segment header in " + kv.name);
  }
  BlockStats part;
  ZIDIAN_RETURN_NOT_OK(DecodeBlockStats(sv, arity, &part));
  MergeBlockStats(&total, part, arity);
  ++segments_fetched;
  for (uint64_t s = 1; s < segments; ++s) {
    auto res =
        cluster_->Get(SegmentKey(kv, key, s), &scratch, CacheFill::kNoFill);
    if (!res.ok()) return res.status();
    BlockStats seg_stats;
    ZIDIAN_RETURN_NOT_OK(
        DecodeBlockStats(res.value(), arity, &seg_stats));
    MergeBlockStats(&total, seg_stats, arity);
    ++segments_fetched;
  }
  ChargeStatsFetch(scratch, segments_fetched, arity, m);
  return total;
}

namespace {

/// Drains one in-flight fan-out, invoking `decode` on every result slot:
/// cache-served slots first (they never left the middleware, so they are
/// readable before any node answers), then each node's slots as its
/// modeled completion arrives — decoding overlaps the batches still in
/// flight. Slot-coverage order differs from the serial path but every
/// decode is per-slot independent, so rows and counters cannot.
Status DrainDecoding(AsyncMultiGet* handle, size_t slots,
                     const std::function<Status(size_t)>& decode) {
  std::vector<uint8_t> in_batch(slots, 0);
  for (const auto& b : handle->batches()) {
    for (uint32_t s : b.slots) in_batch[s] = 1;
  }
  for (size_t i = 0; i < slots; ++i) {
    if (in_batch[i] == 0) ZIDIAN_RETURN_NOT_OK(decode(i));
  }
  for (int b = handle->WaitNext(); b >= 0; b = handle->WaitNext()) {
    for (uint32_t s : handle->batches()[static_cast<size_t>(b)].slots) {
      ZIDIAN_RETURN_NOT_OK(decode(s));
    }
  }
  return Status::OK();
}

}  // namespace

Result<std::vector<std::vector<Tuple>>> BaavStore::MultiGetBlocks(
    const KvSchema& kv, const std::vector<Tuple>& keys,
    QueryMetrics* m) const {
  std::vector<std::vector<Tuple>> out(keys.size());
  if (keys.empty()) return out;
  size_t arity = kv.value_attrs.size();

  std::vector<std::string> seg0;
  seg0.reserve(keys.size());
  for (const auto& key : keys) seg0.push_back(SegmentKey(kv, key, 0));
  auto first = cluster_->MultiGet(seg0, m);
  ZIDIAN_RETURN_NOT_OK(first.status);  // unreachable keys fail the fetch

  // Blocks split across segments need a second round for the overflow keys.
  std::vector<std::string> extra_keys;
  std::vector<size_t> extra_owner;
  for (size_t i = 0; i < keys.size(); ++i) {
    if (!first[i].has_value()) continue;  // absent key: empty block
    std::string_view sv = *first[i];
    uint64_t segments = 0;
    if (!GetVarint64(&sv, &segments) || segments == 0) {
      return Status::Corruption("bad segment header in " + kv.name);
    }
    ZIDIAN_RETURN_NOT_OK(DecodeBlock(sv, arity, &out[i]));
    for (uint64_t s = 1; s < segments; ++s) {
      extra_keys.push_back(SegmentKey(kv, keys[i], s));
      extra_owner.push_back(i);
    }
  }
  if (!extra_keys.empty()) {
    auto rest = cluster_->MultiGet(extra_keys, m);
    ZIDIAN_RETURN_NOT_OK(rest.status);
    for (size_t j = 0; j < extra_keys.size(); ++j) {
      if (!rest[j].has_value()) {
        return Status::Corruption("missing segment in " + kv.name);
      }
      std::vector<Tuple> part;
      ZIDIAN_RETURN_NOT_OK(DecodeBlock(*rest[j], arity, &part));
      auto& rows = out[extra_owner[j]];
      rows.insert(rows.end(), std::make_move_iterator(part.begin()),
                  std::make_move_iterator(part.end()));
    }
  }
  if (m != nullptr) {
    for (size_t i = 0; i < keys.size(); ++i) {
      if (!first[i].has_value()) continue;
      m->values_accessed += out[i].size() * arity + keys[i].size();
    }
  }
  return out;
}

Result<std::vector<std::vector<Tuple>>> BaavStore::MultiGetBlocks(
    const KvSchema& kv, const std::vector<Tuple>& keys, QueryMetrics* m,
    FanoutMode fanout, FanoutStats* fanout_stats) const {
  if (fanout == FanoutMode::kSerial) return MultiGetBlocks(kv, keys, m);
  std::vector<std::vector<Tuple>> out(keys.size());
  if (keys.empty()) return out;
  size_t arity = kv.value_attrs.size();

  std::vector<std::string> seg0;
  seg0.reserve(keys.size());
  for (const auto& key : keys) seg0.push_back(SegmentKey(kv, key, 0));
  AsyncMultiGet first = cluster_->MultiGetAsync(seg0, m);
  ZIDIAN_RETURN_NOT_OK(first.result().status);  // verdicts are set at issue

  std::vector<uint64_t> seg_count(keys.size(), 0);
  ZIDIAN_RETURN_NOT_OK(
      DrainDecoding(&first, keys.size(), [&](size_t i) -> Status {
        if (!first.result()[i].has_value()) return Status::OK();  // absent
        std::string_view sv = *first.result()[i];
        uint64_t segments = 0;
        if (!GetVarint64(&sv, &segments) || segments == 0) {
          return Status::Corruption("bad segment header in " + kv.name);
        }
        seg_count[i] = segments;
        return DecodeBlock(sv, arity, &out[i]);
      }));
  MultiGetResult round1 = first.Finish(fanout_stats);

  // Overflow round: keys collected in slot order AFTER the full drain, so
  // the request — and therefore every counter — matches the serial path.
  std::vector<std::string> extra_keys;
  std::vector<size_t> extra_owner;
  for (size_t i = 0; i < keys.size(); ++i) {
    for (uint64_t s = 1; s < seg_count[i]; ++s) {
      extra_keys.push_back(SegmentKey(kv, keys[i], s));
      extra_owner.push_back(i);
    }
  }
  if (!extra_keys.empty()) {
    AsyncMultiGet rest = cluster_->MultiGetAsync(extra_keys, m);
    ZIDIAN_RETURN_NOT_OK(rest.result().status);
    // Decode as completions arrive, but STAGE the parts per extra key and
    // stitch in ascending key order after the drain — appends must land
    // in segment order whatever order the nodes answered in.
    std::vector<std::vector<Tuple>> parts(extra_keys.size());
    ZIDIAN_RETURN_NOT_OK(
        DrainDecoding(&rest, extra_keys.size(), [&](size_t j) -> Status {
          if (!rest.result()[j].has_value()) {
            return Status::Corruption("missing segment in " + kv.name);
          }
          return DecodeBlock(*rest.result()[j], arity, &parts[j]);
        }));
    (void)rest.Finish(fanout_stats);  // already drained; keep only the stats
    for (size_t j = 0; j < extra_keys.size(); ++j) {
      auto& rows = out[extra_owner[j]];
      rows.insert(rows.end(), std::make_move_iterator(parts[j].begin()),
                  std::make_move_iterator(parts[j].end()));
    }
  }
  if (m != nullptr) {
    for (size_t i = 0; i < keys.size(); ++i) {
      if (!round1[i].has_value()) continue;
      m->values_accessed += out[i].size() * arity + keys[i].size();
    }
  }
  return out;
}

Result<std::vector<BlockStats>> BaavStore::MultiGetBlockStats(
    const KvSchema& kv, const std::vector<Tuple>& keys,
    QueryMetrics* m) const {
  size_t arity = kv.value_attrs.size();
  std::vector<BlockStats> out(keys.size());
  for (auto& st : out) st.columns.assign(arity, BlockColumnStats{});
  if (keys.empty()) return out;

  // Fetch through a scratch meter: a stats read ships only header-sized
  // payloads, so the cluster-level byte charge must not be recorded — and
  // (kNoFill) its misses must not plant full blocks in the cache either.
  QueryMetrics scratch;
  uint64_t segments_fetched = 0;

  std::vector<std::string> seg0;
  seg0.reserve(keys.size());
  for (const auto& key : keys) seg0.push_back(SegmentKey(kv, key, 0));
  auto first = cluster_->MultiGet(seg0, &scratch, CacheFill::kNoFill);
  ZIDIAN_RETURN_NOT_OK(first.status);  // unreachable keys fail the fetch

  std::vector<std::string> extra_keys;
  std::vector<size_t> extra_owner;
  for (size_t i = 0; i < keys.size(); ++i) {
    if (!first[i].has_value()) continue;  // absent: zero rows
    std::string_view sv = *first[i];
    uint64_t segments = 0;
    if (!GetVarint64(&sv, &segments) || segments == 0) {
      return Status::Corruption("bad segment header in " + kv.name);
    }
    BlockStats part;
    ZIDIAN_RETURN_NOT_OK(DecodeBlockStats(sv, arity, &part));
    MergeBlockStats(&out[i], part, arity);
    ++segments_fetched;
    for (uint64_t s = 1; s < segments; ++s) {
      extra_keys.push_back(SegmentKey(kv, keys[i], s));
      extra_owner.push_back(i);
    }
  }
  if (!extra_keys.empty()) {
    auto rest = cluster_->MultiGet(extra_keys, &scratch, CacheFill::kNoFill);
    ZIDIAN_RETURN_NOT_OK(rest.status);
    for (size_t j = 0; j < extra_keys.size(); ++j) {
      if (!rest[j].has_value()) {
        return Status::Corruption("missing segment in " + kv.name);
      }
      BlockStats part;
      ZIDIAN_RETURN_NOT_OK(DecodeBlockStats(*rest[j], arity, &part));
      MergeBlockStats(&out[extra_owner[j]], part, arity);
      ++segments_fetched;
    }
  }
  // Mirror GetBlockStats: one get per fetched segment (absent keys charge
  // nothing), header-sized payloads only — from the cache for segments
  // that hit. Round trips come from the batched fetches that went out.
  ChargeStatsFetch(scratch, segments_fetched, arity, m);
  return out;
}

Result<std::vector<BlockStats>> BaavStore::MultiGetBlockStats(
    const KvSchema& kv, const std::vector<Tuple>& keys, QueryMetrics* m,
    FanoutMode fanout, FanoutStats* fanout_stats) const {
  if (fanout == FanoutMode::kSerial) return MultiGetBlockStats(kv, keys, m);
  size_t arity = kv.value_attrs.size();
  std::vector<BlockStats> out(keys.size());
  for (auto& st : out) st.columns.assign(arity, BlockColumnStats{});
  if (keys.empty()) return out;

  // Same scratch-meter / kNoFill discipline as the serial path — the
  // overlapped schedule must not change what a stats read is charged.
  QueryMetrics scratch;
  uint64_t segments_fetched = 0;

  std::vector<std::string> seg0;
  seg0.reserve(keys.size());
  for (const auto& key : keys) seg0.push_back(SegmentKey(kv, key, 0));
  AsyncMultiGet first =
      cluster_->MultiGetAsync(seg0, &scratch, CacheFill::kNoFill);
  ZIDIAN_RETURN_NOT_OK(first.result().status);

  std::vector<uint64_t> seg_count(keys.size(), 0);
  ZIDIAN_RETURN_NOT_OK(
      DrainDecoding(&first, keys.size(), [&](size_t i) -> Status {
        if (!first.result()[i].has_value()) return Status::OK();  // absent
        std::string_view sv = *first.result()[i];
        uint64_t segments = 0;
        if (!GetVarint64(&sv, &segments) || segments == 0) {
          return Status::Corruption("bad segment header in " + kv.name);
        }
        seg_count[i] = segments;
        BlockStats part;
        ZIDIAN_RETURN_NOT_OK(DecodeBlockStats(sv, arity, &part));
        MergeBlockStats(&out[i], part, arity);
        ++segments_fetched;
        return Status::OK();
      }));
  (void)first.Finish(fanout_stats);  // already drained; keep only the stats

  std::vector<std::string> extra_keys;
  std::vector<size_t> extra_owner;
  for (size_t i = 0; i < keys.size(); ++i) {
    for (uint64_t s = 1; s < seg_count[i]; ++s) {
      extra_keys.push_back(SegmentKey(kv, keys[i], s));
      extra_owner.push_back(i);
    }
  }
  if (!extra_keys.empty()) {
    AsyncMultiGet rest =
        cluster_->MultiGetAsync(extra_keys, &scratch, CacheFill::kNoFill);
    ZIDIAN_RETURN_NOT_OK(rest.result().status);
    // Stage per-segment stats and merge in ascending key order after the
    // drain: MergeBlockStats sums floats, so the association must be the
    // serial path's, whatever order the nodes answered in.
    std::vector<BlockStats> parts(extra_keys.size());
    ZIDIAN_RETURN_NOT_OK(
        DrainDecoding(&rest, extra_keys.size(), [&](size_t j) -> Status {
          if (!rest.result()[j].has_value()) {
            return Status::Corruption("missing segment in " + kv.name);
          }
          return DecodeBlockStats(*rest.result()[j], arity, &parts[j]);
        }));
    (void)rest.Finish(fanout_stats);  // already drained; keep only the stats
    for (size_t j = 0; j < extra_keys.size(); ++j) {
      MergeBlockStats(&out[extra_owner[j]], parts[j], arity);
      ++segments_fetched;
    }
  }
  ChargeStatsFetch(scratch, segments_fetched, arity, m);
  return out;
}

Status BaavStore::ScanInstance(
    const KvSchema& kv, QueryMetrics* m,
    const std::function<void(const Tuple&, const std::vector<Tuple>&)>& fn)
    const {
  return ScanInstance(kv, m, nullptr, 1, fn);
}

Status BaavStore::ScanInstance(
    const KvSchema& kv, QueryMetrics* m, ThreadPool* pool, int workers,
    const std::function<void(const Tuple&, const std::vector<Tuple>&)>& fn)
    const {
  std::string prefix = InstancePrefix(kv);
  Status st = Status::OK();
  // Collect per-key segments: hash partitioning scatters segments across
  // nodes, so group by X first, then decode in segment order. The ordered
  // map fixes the block order every chunking below must reproduce.
  std::map<std::string, std::map<int64_t, std::string>> by_key;
  cluster_->ScanPrefix(prefix, m,
                       [&](std::string_view key, std::string_view value) {
                         std::string_view rest = key.substr(prefix.size());
                         // Trailing 8 bytes: ordered int64 segment number.
                         if (rest.size() < 8) {
                           st = Status::Corruption("short BaaV key");
                           return;
                         }
                         std::string_view seg_view =
                             rest.substr(rest.size() - 8);
                         std::string xpart(rest.substr(0, rest.size() - 8));
                         int64_t seg;
                         if (!DecodeOrderedInt64(&seg_view, &seg)) {
                           st = Status::Corruption("bad segment suffix");
                           return;
                         }
                         by_key[xpart][seg] = std::string(value);
                       });
  ZIDIAN_RETURN_NOT_OK(st);

  // Decode chunk-per-worker: each worker owns a contiguous range of
  // blocks, decodes into its own slot and meters its own delta; the merge
  // walks the slots in worker order and hands every block to `fn` on the
  // calling thread — same block order, same counters as the sequential
  // scan, whatever the scheduler did.
  std::vector<const std::pair<const std::string,
                              std::map<int64_t, std::string>>*> blocks;
  blocks.reserve(by_key.size());
  for (const auto& entry : by_key) blocks.push_back(&entry);

  struct Decoded {
    Tuple key;
    std::vector<Tuple> rows;
  };
  struct WorkerSlot {
    std::vector<Decoded> decoded;
    QueryMetrics m;
    Status status;
  };
  size_t p = static_cast<size_t>(std::max(1, workers));
  std::vector<WorkerSlot> slots(p);
  auto run_worker = [&](size_t w) {
    WorkerSlot& slot = slots[w];
    auto [begin, end] = ChunkRange(blocks.size(), w, p);
    for (size_t i = begin; i < end; ++i) {
      const auto& [xpart, segments] = *blocks[i];
      Decoded d;
      if (!DecodeKeyTuple(xpart, kv.key_attrs.size(), &d.key)) {
        slot.status = Status::Corruption("bad BaaV key for " + kv.name);
        return;
      }
      for (const auto& [seg_no, data] : segments) {
        std::string_view sv = data;
        if (seg_no == 0) {
          uint64_t n;
          if (!GetVarint64(&sv, &n)) {
            slot.status = Status::Corruption("bad segment header");
            return;
          }
        }
        std::vector<Tuple> part;
        slot.status = DecodeBlock(sv, kv.value_attrs.size(), &part);
        if (!slot.status.ok()) return;
        d.rows.insert(d.rows.end(), std::make_move_iterator(part.begin()),
                      std::make_move_iterator(part.end()));
      }
      slot.m.values_accessed +=
          d.rows.size() * kv.value_attrs.size() + d.key.size();
      slot.decoded.push_back(std::move(d));
    }
  };
  if (pool != nullptr && p > 1) {
    pool->ParallelFor(p, run_worker);
  } else {
    for (size_t w = 0; w < p; ++w) run_worker(w);
  }
  for (auto& slot : slots) {
    ZIDIAN_RETURN_NOT_OK(slot.status);
    if (m != nullptr) *m += slot.m;
    for (const auto& d : slot.decoded) fn(d.key, d.rows);
  }
  return Status::OK();
}

Result<uint64_t> BaavStore::Degree(const KvSchema& kv) const {
  auto it = degree_.find(kv.name);
  if (it != degree_.end()) return it->second;
  uint64_t deg = 0;
  QueryMetrics scratch;
  Status st = ScanInstance(
      kv, &scratch, [&](const Tuple&, const std::vector<Tuple>& rows) {
        deg = std::max<uint64_t>(deg, rows.size());
      });
  // A failed scan proves nothing about the degree: propagate and leave the
  // cache alone so a later healthy scan can still answer. (The dropped
  // Status here used to cache whatever partial max the scan reached —
  // typically 0 — forever.)
  if (!st.ok()) return st;
  degree_[kv.name] = deg;
  return deg;
}

Result<uint64_t> BaavStore::MaxDegree() const {
  uint64_t deg = 0;
  for (const auto& kv : schema_.all()) {
    ZIDIAN_ASSIGN_OR_RETURN(uint64_t d, Degree(kv));
    deg = std::max(deg, d);
  }
  return deg;
}

Result<std::vector<Tuple>> BaavStore::ReadBlockRaw(const KvSchema& kv,
                                                   const Tuple& key) const {
  return GetBlock(kv, key, nullptr);
}

Status BaavStore::ApplyInsert(const std::string& relation,
                              const Tuple& tuple) {
  for (const auto* kv : schema_.ForRelation(relation)) {
    ZIDIAN_ASSIGN_OR_RETURN(Tuple x, ProjectTuple(*kv, tuple, kv->key_attrs));
    ZIDIAN_ASSIGN_OR_RETURN(Tuple y,
                            ProjectTuple(*kv, tuple, kv->value_attrs));
    ZIDIAN_ASSIGN_OR_RETURN(std::vector<Tuple> rows, ReadBlockRaw(*kv, x));
    rows.push_back(std::move(y));
    ZIDIAN_RETURN_NOT_OK(WriteBlock(*kv, x, rows));
  }
  return Status::OK();
}

Status BaavStore::ApplyDelete(const std::string& relation,
                              const Tuple& tuple) {
  for (const auto* kv : schema_.ForRelation(relation)) {
    ZIDIAN_ASSIGN_OR_RETURN(Tuple x, ProjectTuple(*kv, tuple, kv->key_attrs));
    ZIDIAN_ASSIGN_OR_RETURN(Tuple y,
                            ProjectTuple(*kv, tuple, kv->value_attrs));
    ZIDIAN_ASSIGN_OR_RETURN(std::vector<Tuple> rows, ReadBlockRaw(*kv, x));
    for (size_t i = 0; i < rows.size(); ++i) {
      if (rows[i] == y) {
        rows.erase(rows.begin() + static_cast<long>(i));
        break;
      }
    }
    ZIDIAN_RETURN_NOT_OK(WriteBlock(*kv, x, rows));
  }
  return Status::OK();
}

int BaavStore::NodeForBlock(const KvSchema& kv, const Tuple& key) const {
  return cluster_->NodeFor(SegmentKey(kv, key, 0));
}

uint64_t BaavStore::InstanceBytes(const KvSchema& kv) const {
  std::string prefix = InstancePrefix(kv);
  uint64_t bytes = 0;
  QueryMetrics scratch;
  cluster_->ScanPrefix(prefix, &scratch,
                       [&](std::string_view key, std::string_view value) {
                         bytes += key.size() + value.size();
                       });
  return bytes;
}

}  // namespace zidian
