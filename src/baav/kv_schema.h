// BaaV schemas (§4.1): a KV schema ~R<X,Y> declares keyed blocks (k, B)
// where k is a tuple over key attributes X and B a set of partial tuples
// over value attributes Y. A BaaV schema ~R is a set of KV schemas; by the
// paper's convention each KV schema draws its attributes from one relation.
#ifndef ZIDIAN_BAAV_KV_SCHEMA_H_
#define ZIDIAN_BAAV_KV_SCHEMA_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace zidian {

struct KvSchema {
  std::string name;                     ///< unique instance id
  std::string relation;                 ///< source relation schema
  std::vector<std::string> key_attrs;   ///< X
  std::vector<std::string> value_attrs; ///< Y
  /// Optional primary key W subseteq XY (distinctness of Y-tuples per key on
  /// W ∩ Y, §4.1). Empty = none declared.
  std::vector<std::string> primary_key;

  /// att(~R) = X ∪ Y, in X-then-Y order.
  std::vector<std::string> AllAttrs() const;
  bool HasAttr(const std::string& attr) const;

  std::string ToString() const;
};

/// A set of KV schemas with name lookup.
class BaavSchema {
 public:
  Status Add(KvSchema schema);
  const KvSchema* Find(const std::string& name) const;
  std::vector<const KvSchema*> ForRelation(const std::string& relation) const;
  const std::vector<KvSchema>& all() const { return schemas_; }
  size_t size() const { return schemas_.size(); }

 private:
  std::vector<KvSchema> schemas_;
};

/// Convenience constructor: derives the name "<relation>@<x1,_x2>".
KvSchema MakeKvSchema(const std::string& relation,
                      std::vector<std::string> key_attrs,
                      std::vector<std::string> value_attrs);

}  // namespace zidian

#endif  // ZIDIAN_BAAV_KV_SCHEMA_H_
