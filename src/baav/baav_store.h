// BaaV store ~D (§4.1, §8.2): the physical realization of a BaaV schema on
// the same KV cluster that holds the TaaV data. Module M4's data plane.
//
// Key layout per KV instance ~R<X,Y>:
//   key   = "B" . ordered(instance name) . ordered(X values) . ordered(seg#)
//   value = [segment 0 only] varint total_segments, then the block encoding
//
// Blocks larger than `block_split_threshold_bytes` are split into segments
// that share the X value and carry consecutive segment numbers; they
// logically behave as a single keyed block (§8.2). A point access costs one
// get per segment (one get for degree-bounded blocks).
//
// The store also implements:
//  * the relational->BaaV mapping (BuildInstance / BuildAll, §4.1),
//  * incremental maintenance under insert/delete in O(|Δ| · deg(~D)) (§8.2),
//  * degree tracking (deg of each instance, §4.1) for boundedness checks,
//  * header-only statistics access for grouped aggregates (§8.2).
#ifndef ZIDIAN_BAAV_BAAV_STORE_H_
#define ZIDIAN_BAAV_BAAV_STORE_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "baav/block.h"
#include "baav/kv_schema.h"
#include "common/metrics.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "relational/relation.h"
#include "relational/schema.h"
#include "storage/cluster.h"

namespace zidian {

struct BaavStoreOptions {
  /// Split threshold per keyed block (paper default 500MB per relation;
  /// scaled to the simulator's data sizes — ablated in bench_ablation).
  size_t block_split_threshold_bytes = 256 << 10;
  BlockOptions block;
};

class BaavStore {
 public:
  BaavStore(Cluster* cluster, BaavSchema schema, const Catalog* catalog,
            BaavStoreOptions options = {});

  const BaavSchema& schema() const { return schema_; }
  const BaavStoreOptions& options() const { return options_; }

  /// Maps one relation's data (columns matching the relation schema,
  /// unqualified) onto one KV instance: project on XY, group by X, encode.
  Status BuildInstance(const KvSchema& kv, const Relation& data);

  /// Maps a whole database: builds every KV instance whose relation appears
  /// in `db` (relation name -> data).
  Status BuildAll(const std::map<std::string, Relation>& db);

  /// Fetches the block for `key` (X values, in key_attrs order). Returns the
  /// Y-tuples; empty NotFound if the key is absent. Meters one get per
  /// segment plus the shipped bytes and values.
  Result<std::vector<Tuple>> GetBlock(const KvSchema& kv, const Tuple& key,
                                      QueryMetrics* m) const;

  /// Batched block fetch (§7.2): all first segments in one Cluster::MultiGet
  /// round, overflow segments in a second. Returns one row vector per key,
  /// aligned with `keys` (empty for absent keys). Meters one get per segment
  /// key but only one round trip per touched storage node — the batched hot
  /// path the interleaved extension strategy runs on.
  Result<std::vector<std::vector<Tuple>>> MultiGetBlocks(
      const KvSchema& kv, const std::vector<Tuple>& keys,
      QueryMetrics* m) const;

  /// Fan-out-aware batched block fetch. kSerial is byte-for-byte the
  /// 3-arg overload; kOverlapped issues each round through
  /// Cluster::MultiGetAsync — all touched nodes' batches depart at one
  /// common modeled instant and each node's blocks are decoded as its
  /// completion arrives (AsyncMultiGet::WaitNext), while the other
  /// batches are still in flight. Rows and every CountersEqual field are
  /// bit-identical across the two modes; the hidden per-round network
  /// time is merged into `fanout_stats` (nullable) for the caller's
  /// ChargeFanoutOverlap fold.
  Result<std::vector<std::vector<Tuple>>> MultiGetBlocks(
      const KvSchema& kv, const std::vector<Tuple>& keys, QueryMetrics* m,
      FanoutMode fanout, FanoutStats* fanout_stats) const;

  /// Header-only fetch: per-Y-column aggregates of the block. Meters one get
  /// per segment but only the header bytes / one value per column.
  Result<BlockStats> GetBlockStats(const KvSchema& kv, const Tuple& key,
                                   QueryMetrics* m) const;

  /// Batched header-only fetch: MultiGetBlocks' counterpart for the stats
  /// pushdown path. One BlockStats per key, aligned with `keys`.
  Result<std::vector<BlockStats>> MultiGetBlockStats(
      const KvSchema& kv, const std::vector<Tuple>& keys,
      QueryMetrics* m) const;

  /// Fan-out-aware stats fetch: the MultiGetBlocks twin for the stats
  /// pushdown path, with the same serial/overlapped contract (stats and
  /// counters bit-identical across modes; overlap reported through
  /// `fanout_stats`). Overflow-segment stats are staged per extra key and
  /// merged in ascending key order after the drain, so the float sums in
  /// MergeBlockStats see the serial path's exact association.
  Result<std::vector<BlockStats>> MultiGetBlockStats(
      const KvSchema& kv, const std::vector<Tuple>& keys, QueryMetrics* m,
      FanoutMode fanout, FanoutStats* fanout_stats) const;

  /// Full scan of a KV instance (the non-scan-free path): one next() per
  /// block segment plus the shipped bytes.
  Status ScanInstance(
      const KvSchema& kv, QueryMetrics* m,
      const std::function<void(const Tuple& key,
                               const std::vector<Tuple>& rows)>& fn) const;

  /// Data-parallel instance scan: key enumeration stays sequential (it
  /// fixes the block order), then block decode is chunked across
  /// `workers` on `pool` with per-worker QueryMetrics deltas; `fn` is
  /// invoked on the calling thread in the same block order as the
  /// sequential scan, with identical metering. Null pool or workers <= 1
  /// degrades to the sequential code path.
  Status ScanInstance(
      const KvSchema& kv, QueryMetrics* m, ThreadPool* pool, int workers,
      const std::function<void(const Tuple& key,
                               const std::vector<Tuple>& rows)>& fn) const;

  /// deg(~D) of one instance: max logical block size (tuples). Computed on
  /// first use (a full instance scan) and kept current by incremental
  /// maintenance. A failed scan propagates its error and caches nothing —
  /// it must not poison the degree cache with a partial count (the planner
  /// reads this for §6.1 boundedness; a silently-zero degree would claim
  /// bounded evaluation for an instance nobody measured).
  Result<uint64_t> Degree(const KvSchema& kv) const;
  /// deg over all instances; first scan failure propagates.
  Result<uint64_t> MaxDegree() const;

  /// Incremental maintenance: reflects one inserted/deleted tuple of
  /// `relation` (values in relation-schema column order) in every KV
  /// instance derived from it. O(deg) per instance.
  Status ApplyInsert(const std::string& relation, const Tuple& tuple);
  Status ApplyDelete(const std::string& relation, const Tuple& tuple);

  /// Storage footprint of one instance in bytes (for T2B's budget).
  uint64_t InstanceBytes(const KvSchema& kv) const;

  /// Storage node that owns the (first segment of the) block for `key`;
  /// used by the interleaved parallelizer (§7.2) to route partitions.
  int NodeForBlock(const KvSchema& kv, const Tuple& key) const;

  const Cluster* cluster() const { return cluster_; }

 private:
  std::string InstancePrefix(const KvSchema& kv) const;
  std::string SegmentKey(const KvSchema& kv, const Tuple& key,
                         uint64_t segment) const;
  /// Projects a relation-order tuple onto the given attribute names.
  Result<Tuple> ProjectTuple(const KvSchema& kv, const Tuple& tuple,
                             const std::vector<std::string>& attrs) const;
  /// Reads all segments of a key (unmetered), empty if absent.
  Result<std::vector<Tuple>> ReadBlockRaw(const KvSchema& kv,
                                          const Tuple& key) const;
  /// Rewrites the whole block for a key (re-splitting as needed).
  Status WriteBlock(const KvSchema& kv, const Tuple& key,
                    const std::vector<Tuple>& rows);

  Cluster* cluster_;
  BaavSchema schema_;
  const Catalog* catalog_;
  BaavStoreOptions options_;
  mutable std::map<std::string, uint64_t> degree_;  // instance -> max block
};

}  // namespace zidian

#endif  // ZIDIAN_BAAV_BAAV_STORE_H_
