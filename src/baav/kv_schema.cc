#include "baav/kv_schema.h"

#include <algorithm>
#include <sstream>

namespace zidian {

std::vector<std::string> KvSchema::AllAttrs() const {
  std::vector<std::string> all = key_attrs;
  all.insert(all.end(), value_attrs.begin(), value_attrs.end());
  return all;
}

bool KvSchema::HasAttr(const std::string& attr) const {
  return std::find(key_attrs.begin(), key_attrs.end(), attr) !=
             key_attrs.end() ||
         std::find(value_attrs.begin(), value_attrs.end(), attr) !=
             value_attrs.end();
}

std::string KvSchema::ToString() const {
  std::ostringstream os;
  os << name << " = ~" << relation << "<";
  for (size_t i = 0; i < key_attrs.size(); ++i) {
    if (i > 0) os << ",";
    os << key_attrs[i];
  }
  os << " | ";
  for (size_t i = 0; i < value_attrs.size(); ++i) {
    if (i > 0) os << ",";
    os << value_attrs[i];
  }
  os << ">";
  return os.str();
}

Status BaavSchema::Add(KvSchema schema) {
  if (Find(schema.name) != nullptr) {
    return Status::AlreadyExists("kv schema " + schema.name);
  }
  schemas_.push_back(std::move(schema));
  return Status::OK();
}

const KvSchema* BaavSchema::Find(const std::string& name) const {
  for (const auto& s : schemas_) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

std::vector<const KvSchema*> BaavSchema::ForRelation(
    const std::string& relation) const {
  std::vector<const KvSchema*> out;
  for (const auto& s : schemas_) {
    if (s.relation == relation) out.push_back(&s);
  }
  return out;
}

KvSchema MakeKvSchema(const std::string& relation,
                      std::vector<std::string> key_attrs,
                      std::vector<std::string> value_attrs) {
  KvSchema s;
  s.relation = relation;
  s.key_attrs = std::move(key_attrs);
  s.value_attrs = std::move(value_attrs);
  std::string name = relation + "@";
  for (size_t i = 0; i < s.key_attrs.size(); ++i) {
    if (i > 0) name += "_";
    name += s.key_attrs[i];
  }
  s.name = std::move(name);
  return s;
}

}  // namespace zidian
