// Keyed-block codec (§8.2): a block B of Y-tuples is encapsulated as one KV
// value. The codec implements the two "added functionality" features:
//  * Compression: B stores distinct Y-tuples with multiplicity counters,
//    preserving bag semantics of the source relation.
//  * Statistics: a header carries per-numeric-column count/min/max/sum so
//    grouped aggregates keyed on X can be answered from the header alone
//    (DecodeBlockStats) without materializing the tuples.
//
// Layout:
//   varint  format flags (bit0 compressed, bit1 has stats)
//   varint  row_count (logical rows incl. multiplicities)
//   varint  entry_count (distinct rows if compressed, == row_count otherwise)
//   [stats] per column: 1 byte numeric?, then count/min/max/sum as fixed64
//   entries: tuple payload [+ varint multiplicity if compressed]
#ifndef ZIDIAN_BAAV_BLOCK_H_
#define ZIDIAN_BAAV_BLOCK_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "relational/value.h"

namespace zidian {

struct BlockOptions {
  bool compress = true;
  bool stats = true;
};

struct BlockColumnStats {
  bool numeric = false;
  uint64_t count = 0;  ///< non-null numeric values
  double min = 0, max = 0, sum = 0;
};

struct BlockStats {
  uint64_t row_count = 0;
  std::vector<BlockColumnStats> columns;  ///< one per Y attribute
};

/// Serializes `rows` (each of the given arity) into a block value.
std::string EncodeBlock(const std::vector<Tuple>& rows, size_t arity,
                        const BlockOptions& options);

/// Full decode; multiplicities are re-expanded (bag semantics).
Status DecodeBlock(std::string_view data, size_t arity,
                   std::vector<Tuple>* rows);

/// Header-only decode; touches O(arity) bytes regardless of block size.
Status DecodeBlockStats(std::string_view data, size_t arity, BlockStats* out);

/// Logical row count without materializing tuples.
Result<uint64_t> BlockRowCount(std::string_view data);

}  // namespace zidian

#endif  // ZIDIAN_BAAV_BLOCK_H_
