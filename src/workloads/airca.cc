// US air-carrier-shaped workload (§9 "AIRCA"): 7 tables, 358 attributes.
// The real dataset joins Flight On-Time Performance with Carrier Statistics;
// its defining property for Zidian is *width* — very wide fact tables of
// which a query touches a handful of columns — plus skewed carriers/airports.
// Filler metric columns (f01, f02, ...) reproduce the width; a BaaV store
// fetches only the partial tuples a query needs, while the TaaV baseline
// ships whole 50-90-attribute tuples.
#include "common/rng.h"
#include "workloads/workload.h"

namespace zidian {

namespace {

Value I(int64_t v) { return Value(v); }
Value D(double v) { return Value(v); }
Value S(std::string v) { return Value(std::move(v)); }

const char* kStates[] = {"CA", "TX", "NY", "FL", "IL", "GA", "WA", "CO",
                         "AZ", "NC", "MA", "PA"};
const char* kCauses[] = {"CARRIER", "WEATHER", "NAS", "SECURITY",
                         "LATE_AIRCRAFT"};

/// Builds a schema of named leading columns plus integer filler columns
/// "fNN" up to `total` attributes.
TableSchema WideSchema(const std::string& name,
                       std::vector<std::pair<std::string, ValueType>> lead,
                       size_t total, std::vector<std::string> pk) {
  std::vector<Column> columns;
  for (auto& [n, t] : lead) columns.push_back({n, t});
  for (size_t i = columns.size(); i < total; ++i) {
    std::string f = "f" + std::string(i < 10 ? "0" : "") + std::to_string(i);
    columns.push_back({f, ValueType::kInt});
  }
  return TableSchema(name, std::move(columns), std::move(pk));
}

/// Appends filler values for the columns beyond the leading ones.
/// emplace_back constructs the Value in place: no moved-from temporary,
/// which also sidesteps GCC 12's spurious -Wmaybe-uninitialized on
/// moving a variant that provably holds the int alternative.
void Fill(Tuple* t, size_t total, Rng* rng) {
  while (t->size() < total) t->emplace_back(rng->Uniform(0, 999));
}

}  // namespace

Result<Workload> MakeAirca(double scale, uint64_t seed) {
  Workload w;
  w.name = "AIRCA";
  Rng rng(seed);
  using VT = ValueType;

  // 7 tables: 20 + 20 + 30 + 30 + 80 + 90 + 88 = 358 attributes.
  ZIDIAN_RETURN_NOT_OK(w.catalog.AddTable(WideSchema(
      "carrier",
      {{"carrier_id", VT::kInt}, {"carrier_name", VT::kString},
       {"country", VT::kString}, {"fleet_size", VT::kInt}},
      20, {"carrier_id"})));
  ZIDIAN_RETURN_NOT_OK(w.catalog.AddTable(WideSchema(
      "airport",
      {{"airport_id", VT::kInt}, {"city", VT::kString}, {"state", VT::kString},
       {"hub_rank", VT::kInt}},
      20, {"airport_id"})));
  ZIDIAN_RETURN_NOT_OK(w.catalog.AddTable(WideSchema(
      "aircraft",
      {{"aircraft_id", VT::kInt}, {"carrier_id", VT::kInt},
       {"model", VT::kString}, {"seats", VT::kInt}, {"year_built", VT::kInt}},
      30, {"aircraft_id"})));
  ZIDIAN_RETURN_NOT_OK(w.catalog.AddTable(WideSchema(
      "route",
      {{"route_id", VT::kInt}, {"origin_id", VT::kInt}, {"dest_id", VT::kInt},
       {"distance_mi", VT::kInt}},
      30, {"route_id"})));
  ZIDIAN_RETURN_NOT_OK(w.catalog.AddTable(WideSchema(
      "flight",
      {{"flight_id", VT::kInt}, {"carrier_id", VT::kInt},
       {"route_id", VT::kInt}, {"aircraft_id", VT::kInt},
       {"flight_date", VT::kInt}, {"dep_delay", VT::kInt},
       {"arr_delay", VT::kInt}, {"cancelled", VT::kInt},
       {"air_time", VT::kInt}, {"taxi_out", VT::kInt}},
      80, {"flight_id"})));
  ZIDIAN_RETURN_NOT_OK(w.catalog.AddTable(WideSchema(
      "performance",
      {{"perf_id", VT::kInt}, {"carrier_id", VT::kInt},
       {"airport_id", VT::kInt}, {"year", VT::kInt}, {"month", VT::kInt},
       {"ontime_pct", VT::kDouble}, {"flights_total", VT::kInt},
       {"flights_delayed", VT::kInt}},
      90, {"perf_id"})));
  ZIDIAN_RETURN_NOT_OK(w.catalog.AddTable(WideSchema(
      "delay_cause",
      {{"delay_id", VT::kInt}, {"flight_id", VT::kInt}, {"cause", VT::kString},
       {"minutes", VT::kInt}},
      88, {"delay_id"})));

  int64_t n_carriers = 15;
  int64_t n_airports = 40;
  int64_t n_aircraft = std::max<int64_t>(10,
                                         static_cast<int64_t>(100 * scale));
  int64_t n_routes = std::max<int64_t>(12, static_cast<int64_t>(120 * scale));
  int64_t flights_per_aircraft = 20;  // bounded, independent of |D|
  int64_t n_flights = n_aircraft * flights_per_aircraft;
  int64_t n_perf = std::max<int64_t>(30, static_cast<int64_t>(600 * scale));

  Zipf carrier_zipf(static_cast<uint64_t>(n_carriers), 1.3);
  Zipf airport_zipf(static_cast<uint64_t>(n_airports), 1.2);

  auto arity = [&](const char* t) { return w.catalog.Find(t)->arity(); };

  {
    Relation r(w.catalog.Find("carrier")->AttributeNames());
    for (int64_t i = 1; i <= n_carriers; ++i) {
      Tuple t{I(i), S("Carrier-" + std::to_string(i)), S("US"),
              I(rng.Uniform(40, 900))};
      Fill(&t, arity("carrier"), &rng);
      r.Add(std::move(t));
    }
    w.data.emplace("carrier", std::move(r));
  }
  {
    Relation r(w.catalog.Find("airport")->AttributeNames());
    for (int64_t i = 1; i <= n_airports; ++i) {
      Tuple t{I(i), S("City" + std::to_string(i)),
              S(kStates[rng.Uniform(0, 11)]), I(rng.Uniform(1, 40))};
      Fill(&t, arity("airport"), &rng);
      r.Add(std::move(t));
    }
    w.data.emplace("airport", std::move(r));
  }
  {
    Relation r(w.catalog.Find("aircraft")->AttributeNames());
    for (int64_t i = 1; i <= n_aircraft; ++i) {
      Tuple t{I(i), I(static_cast<int64_t>(carrier_zipf.Sample(&rng))),
              S(rng.Chance(0.5) ? "B737" : "A320"), I(rng.Uniform(120, 220)),
              I(rng.Uniform(1990, 2018))};
      Fill(&t, arity("aircraft"), &rng);
      r.Add(std::move(t));
    }
    w.data.emplace("aircraft", std::move(r));
  }
  {
    Relation r(w.catalog.Find("route")->AttributeNames());
    for (int64_t i = 1; i <= n_routes; ++i) {
      int64_t origin = static_cast<int64_t>(airport_zipf.Sample(&rng));
      int64_t dest = 1 + (origin + rng.Uniform(0, n_airports - 2)) %
                             n_airports;
      Tuple t{I(i), I(origin), I(dest), I(rng.Uniform(120, 2800))};
      Fill(&t, arity("route"), &rng);
      r.Add(std::move(t));
    }
    w.data.emplace("route", std::move(r));
  }
  {
    Relation fl(w.catalog.Find("flight")->AttributeNames());
    Relation dc(w.catalog.Find("delay_cause")->AttributeNames());
    int64_t fid = 1, did = 1;
    for (int64_t a = 1; a <= n_aircraft; ++a) {
      for (int64_t k = 0; k < flights_per_aircraft; ++k, ++fid) {
        int64_t dep_delay = rng.Chance(0.35) ? rng.Uniform(1, 180) : 0;
        int64_t arr_delay =
            dep_delay > 0 ? dep_delay + rng.Uniform(-20, 40) : 0;
        Tuple t{I(fid),
                I(static_cast<int64_t>(carrier_zipf.Sample(&rng))),
                I(rng.Uniform(1, n_routes)),
                I(a),
                I(17897 + rng.Uniform(0, 365)),
                I(dep_delay),
                I(arr_delay),
                I(rng.Chance(0.02) ? 1 : 0),
                I(rng.Uniform(35, 400)),
                I(rng.Uniform(5, 45))};
        Fill(&t, arity("flight"), &rng);
        fl.Add(std::move(t));
        if (dep_delay > 15) {  // at most 2 causes per flight: bounded
          Tuple d{I(did++), I(fid), S(kCauses[rng.Uniform(0, 4)]),
                  I(dep_delay)};
          Fill(&d, arity("delay_cause"), &rng);
          dc.Add(std::move(d));
          if (rng.Chance(0.3)) {
            Tuple d2{I(did++), I(fid), S(kCauses[rng.Uniform(0, 4)]),
                     I(rng.Uniform(1, 30))};
            Fill(&d2, arity("delay_cause"), &rng);
            dc.Add(std::move(d2));
          }
        }
      }
    }
    w.data.emplace("flight", std::move(fl));
    w.data.emplace("delay_cause", std::move(dc));
  }
  {
    Relation r(w.catalog.Find("performance")->AttributeNames());
    for (int64_t i = 1; i <= n_perf; ++i) {
      Tuple t{I(i),
              I(static_cast<int64_t>(carrier_zipf.Sample(&rng))),
              I(static_cast<int64_t>(airport_zipf.Sample(&rng))),
              I(rng.Uniform(1999, 2001)),
              I(rng.Uniform(1, 12)),
              D(rng.Uniform(55, 98) / 1.0),
              I(rng.Uniform(100, 4000)),
              I(rng.Uniform(5, 900))};
      Fill(&t, arity("performance"), &rng);
      r.Add(std::move(t));
    }
    w.data.emplace("performance", std::move(r));
  }

  int64_t f1 = 1 + static_cast<int64_t>(rng.Next() % uint64_t(n_flights));
  int64_t a1 = 1 + static_cast<int64_t>(rng.Next() % uint64_t(n_aircraft));
  int64_t r1 = 1 + static_cast<int64_t>(rng.Next() % uint64_t(n_routes));
  auto add = [&](std::string name, std::string sql, bool sf, bool bounded) {
    w.queries.push_back({std::move(name), std::move(sql), sf, bounded});
  };
  // q1-q6: scan-free + bounded point lookups.
  add("air-q1",
      "SELECT f.flight_date, f.dep_delay, f.arr_delay, c.carrier_name "
      "FROM flight f, carrier c WHERE f.carrier_id = c.carrier_id "
      "AND f.flight_id = " + std::to_string(f1),
      true, true);
  add("air-q2",
      "SELECT a.model, f.flight_date, f.air_time FROM aircraft a, flight f "
      "WHERE a.aircraft_id = f.aircraft_id AND a.aircraft_id = " +
          std::to_string(a1),
      true, true);
  add("air-q3",
      "SELECT f.flight_id, d.cause, d.minutes FROM flight f, delay_cause d "
      "WHERE f.flight_id = d.flight_id AND f.flight_id = " +
          std::to_string(f1),
      true, true);
  add("air-q4",
      "SELECT r.distance_mi, o.city, x.city FROM route r, airport o, "
      "airport x WHERE r.origin_id = o.airport_id "
      "AND r.dest_id = x.airport_id AND r.route_id = " + std::to_string(r1),
      true, true);
  add("air-q5",
      "SELECT a.model, COUNT(*), AVG(f.arr_delay) FROM aircraft a, flight f "
      "WHERE a.aircraft_id = f.aircraft_id AND a.aircraft_id = " +
          std::to_string(a1) + " GROUP BY a.model",
      true, true);
  add("air-q6",
      "SELECT c.carrier_name, f.flight_date, f.dep_delay, d.cause "
      "FROM carrier c, flight f, delay_cause d "
      "WHERE c.carrier_id = f.carrier_id AND f.flight_id = d.flight_id "
      "AND f.flight_id = " + std::to_string(f1),
      true, true);
  // q7-q12: global / range aggregates, not scan-free.
  add("air-q7",
      "SELECT f.carrier_id, COUNT(*), AVG(f.arr_delay) FROM flight f "
      "GROUP BY f.carrier_id",
      false, false);
  add("air-q8",
      "SELECT c.carrier_name, AVG(p.ontime_pct) "
      "FROM carrier c, performance p WHERE c.carrier_id = p.carrier_id "
      "GROUP BY c.carrier_name",
      false, false);
  add("air-q9",
      "SELECT d.cause, COUNT(*), SUM(d.minutes) FROM delay_cause d "
      "WHERE d.minutes > 30 GROUP BY d.cause",
      false, false);
  add("air-q10",
      "SELECT f.route_id, AVG(f.dep_delay) FROM flight f "
      "WHERE f.cancelled < 1 AND f.dep_delay > 0 GROUP BY f.route_id",
      false, false);
  add("air-q11",
      "SELECT a.model, AVG(f.air_time) FROM aircraft a, flight f "
      "WHERE a.aircraft_id = f.aircraft_id AND f.air_time > 100 "
      "GROUP BY a.model",
      false, false);
  add("air-q12",
      "SELECT p.airport_id, SUM(p.flights_delayed) FROM performance p "
      "WHERE p.year >= 2000 AND p.month <= 6 GROUP BY p.airport_id "
      "ORDER BY p.airport_id LIMIT 10",
      false, false);

  ZIDIAN_RETURN_NOT_OK(DeriveBaavSchema(&w));
  return w;
}

}  // namespace zidian
