// Workload definitions for the experimental study (§9): TPC-H plus the two
// real-life-shaped datasets (UK MOT vehicle tests and US AIRCA air-carrier
// statistics). The originals are published government datasets we cannot
// ship; the generators reproduce their documented shape — table counts,
// attribute counts, Zipf-skewed foreign keys and small active domains — which
// §9 identifies as the properties driving Zidian's gains (see DESIGN.md).
#ifndef ZIDIAN_WORKLOADS_WORKLOAD_H_
#define ZIDIAN_WORKLOADS_WORKLOAD_H_

#include <map>
#include <string>
#include <vector>

#include "baav/kv_schema.h"
#include "common/result.h"
#include "relational/relation.h"
#include "relational/schema.h"
#include "zidian/t2b.h"

namespace zidian {

struct WorkloadQuery {
  std::string name;          ///< e.g. "q11" / "mot-q3"
  std::string sql;
  bool expect_scan_free = false;
  bool expect_bounded = false;
};

struct Workload {
  std::string name;
  Catalog catalog;
  std::map<std::string, Relation> data;  ///< relation name -> rows
  BaavSchema baav;                       ///< derived via T2B from the queries
  std::vector<WorkloadQuery> queries;

  uint64_t TotalRows() const {
    uint64_t n = 0;
    for (const auto& [name_, rel] : data) n += rel.size();
    return n;
  }
  uint64_t TotalValues() const {
    uint64_t n = 0;
    for (const auto& [name_, rel] : data) n += rel.ValueCount();
    return n;
  }
};

/// TPC-H dbgen-style generator. `sf` scales row counts linearly; sf = 1
/// produces ~8.7k rows across the 8 tables (ratios as in the spec: lineitem
/// dominates). Uniform value distributions, as the benchmark mandates.
Result<Workload> MakeTpch(double sf, uint64_t seed = 42);

/// UK MOT shape: 3 tables, 42 attributes, Zipf-skewed makes/models/regions
/// and small active domains. `scale` multiplies row counts.
Result<Workload> MakeMot(double scale, uint64_t seed = 43);

/// US air-carrier shape: 7 tables, 358 attributes (wide fact tables),
/// skewed carriers/airports. `scale` multiplies row counts.
Result<Workload> MakeAirca(double scale, uint64_t seed = 44);

/// Derives the workload's BaaV schema by running T2B over the QCS extracted
/// from all its queries (the §9 methodology; budget defaults to 3.5x data).
Status DeriveBaavSchema(Workload* w, double budget_multiplier = 3.5);

}  // namespace zidian

#endif  // ZIDIAN_WORKLOADS_WORKLOAD_H_
