// UK MOT-shaped workload (§9): 3 tables, 42 attributes. Vehicle makes,
// models, regions and stations are Zipf-skewed with small active domains —
// the two properties §9 credits for Zidian's largest gains. Queries q1-q6
// are scan-free and bounded (vehicle-history point lookups whose chase
// targets have degrees independent of |D|); q7-q12 are not scan-free
// (range/global aggregates with no constant-equality seed).
#include "common/rng.h"
#include "workloads/workload.h"

namespace zidian {

namespace {

const char* kMakes[] = {"FORD",   "VAUXHALL", "VOLKSWAGEN", "BMW",
                        "TOYOTA", "AUDI",     "MERCEDES",   "NISSAN",
                        "PEUGEOT", "HONDA",   "RENAULT",    "CITROEN",
                        "SKODA",  "KIA",      "HYUNDAI",    "MAZDA",
                        "SEAT",   "VOLVO",    "FIAT",       "MINI"};
const char* kFuels[] = {"PETROL", "DIESEL", "HYBRID", "ELECTRIC", "LPG"};
const char* kColors[] = {"BLACK", "WHITE", "SILVER", "BLUE", "RED", "GREY"};
const char* kRegionsMot[] = {"LONDON", "SCOTLAND", "WALES", "MIDLANDS",
                             "NORTH WEST", "NORTH EAST", "SOUTH WEST",
                             "SOUTH EAST", "EAST", "YORKSHIRE", "ULSTER",
                             "HIGHLANDS"};
const char* kResults[] = {"PASS", "FAIL", "PRS", "ABANDONED"};
const char* kWeather[] = {"DRY", "WET", "FOG", "SNOW", "ICE"};

Value I(int64_t v) { return Value(v); }
Value D(double v) { return Value(v); }
Value S(std::string v) { return Value(std::move(v)); }

}  // namespace

Result<Workload> MakeMot(double scale, uint64_t seed) {
  Workload w;
  w.name = "MOT";
  Rng rng(seed);
  using VT = ValueType;

  auto table = [&](const std::string& name,
                   std::vector<std::pair<std::string, VT>> cols,
                   std::vector<std::string> pk) {
    std::vector<Column> columns;
    for (auto& [n, t] : cols) columns.push_back({n, t});
    return w.catalog.AddTable(TableSchema(name, std::move(columns),
                                          std::move(pk)));
  };

  // 3 tables x 14 attributes = 42 attributes (matching the dataset shape).
  ZIDIAN_RETURN_NOT_OK(table(
      "vehicle",
      {{"vehicle_id", VT::kInt}, {"make", VT::kString}, {"model", VT::kString},
       {"fuel_type", VT::kString}, {"color", VT::kString},
       {"first_use_year", VT::kInt}, {"engine_cc", VT::kInt},
       {"region", VT::kString}, {"weight_kg", VT::kInt}, {"doors", VT::kInt},
       {"body_type", VT::kString}, {"transmission", VT::kString},
       {"co2_gkm", VT::kInt}, {"seats", VT::kInt}},
      {"vehicle_id"}));
  ZIDIAN_RETURN_NOT_OK(table(
      "mot_test",
      {{"test_id", VT::kInt}, {"vehicle_id", VT::kInt},
       {"test_date", VT::kInt}, {"test_result", VT::kString},
       {"test_mileage", VT::kInt}, {"station_id", VT::kInt},
       {"test_class", VT::kInt}, {"test_type", VT::kString},
       {"cost", VT::kDouble}, {"duration_min", VT::kInt},
       {"inspector_id", VT::kInt}, {"retest_flag", VT::kInt},
       {"advisory_count", VT::kInt}, {"fail_count", VT::kInt}},
      {"test_id"}));
  ZIDIAN_RETURN_NOT_OK(table(
      "observation",
      {{"obs_id", VT::kInt}, {"vehicle_id", VT::kInt}, {"road_id", VT::kInt},
       {"obs_date", VT::kInt}, {"speed_mph", VT::kInt},
       {"direction", VT::kString}, {"lane", VT::kInt},
       {"weather", VT::kString}, {"temperature_c", VT::kInt},
       {"congestion", VT::kDouble}, {"camera_id", VT::kInt},
       {"region", VT::kString}, {"axle_count", VT::kInt},
       {"occupancy", VT::kInt}},
      {"obs_id"}));

  int64_t n_vehicles =
      std::max<int64_t>(20, static_cast<int64_t>(500 * scale));
  int64_t tests_per_vehicle = 5;     // bounded, independent of |D|
  int64_t obs_per_vehicle = 6;       // bounded, independent of |D|

  Zipf make_zipf(20, 1.25);
  Zipf model_zipf(60, 1.15);
  Zipf region_zipf(12, 1.1);
  Zipf station_zipf(80, 1.2);
  Zipf road_zipf(150, 1.3);

  {
    Relation v(w.catalog.Find("vehicle")->AttributeNames());
    for (int64_t i = 1; i <= n_vehicles; ++i) {
      int64_t make = static_cast<int64_t>(make_zipf.Sample(&rng)) - 1;
      v.Add({I(i), S(kMakes[make]),
             S(std::string(kMakes[make]) + "-M" +
               std::to_string(model_zipf.Sample(&rng))),
             S(kFuels[rng.Uniform(0, 4)]), S(kColors[rng.Uniform(0, 5)]),
             I(rng.Uniform(1995, 2011)), I(rng.Uniform(900, 3200)),
             S(kRegionsMot[region_zipf.Sample(&rng) - 1]),
             I(rng.Uniform(850, 2600)), I(rng.Uniform(2, 5)),
             S(rng.Chance(0.6) ? "HATCHBACK" : "SALOON"),
             S(rng.Chance(0.7) ? "MANUAL" : "AUTO"), I(rng.Uniform(90, 280)),
             I(rng.Uniform(2, 7))});
    }
    w.data.emplace("vehicle", std::move(v));
  }
  {
    Relation t(w.catalog.Find("mot_test")->AttributeNames());
    int64_t tid = 1;
    for (int64_t v = 1; v <= n_vehicles; ++v) {
      int64_t mileage = rng.Uniform(5000, 30000);
      for (int64_t k = 0; k < tests_per_vehicle; ++k, ++tid) {
        mileage += rng.Uniform(4000, 14000);
        const char* result =
            rng.Chance(0.62) ? "PASS" : kResults[rng.Uniform(1, 3)];
        t.Add({I(tid), I(v), I(13514 + 365 * k + rng.Uniform(0, 300)),
               S(result), I(mileage),
               I(static_cast<int64_t>(station_zipf.Sample(&rng))),
               I(rng.Uniform(3, 7)), S(rng.Chance(0.9) ? "NORMAL" : "RETEST"),
               D(rng.Uniform(2995, 5485) / 100.0), I(rng.Uniform(20, 75)),
               I(rng.Uniform(1, 400)), I(rng.Chance(0.12) ? 1 : 0),
               I(rng.Uniform(0, 5)), I(rng.Uniform(0, 4))});
      }
    }
    w.data.emplace("mot_test", std::move(t));
  }
  {
    Relation o(w.catalog.Find("observation")->AttributeNames());
    int64_t oid = 1;
    for (int64_t v = 1; v <= n_vehicles; ++v) {
      for (int64_t k = 0; k < obs_per_vehicle; ++k, ++oid) {
        o.Add({I(oid), I(v), I(static_cast<int64_t>(road_zipf.Sample(&rng))),
               I(13514 + rng.Uniform(0, 1800)), I(rng.Uniform(15, 95)),
               S(rng.Chance(0.5) ? "NB" : "SB"), I(rng.Uniform(1, 4)),
               S(kWeather[rng.Uniform(0, 4)]), I(rng.Uniform(-5, 32)),
               D(rng.Uniform(0, 100) / 100.0), I(rng.Uniform(1, 500)),
               S(kRegionsMot[region_zipf.Sample(&rng) - 1]),
               I(rng.Uniform(2, 6)), I(rng.Uniform(1, 5))});
      }
    }
    w.data.emplace("observation", std::move(o));
  }

  // Query templates. Parameters are instantiated with in-domain values so
  // every point lookup hits data.
  int64_t v1 = 1 + static_cast<int64_t>(rng.Next() % uint64_t(n_vehicles));
  int64_t v2 = 1 + static_cast<int64_t>(rng.Next() % uint64_t(n_vehicles));
  int64_t t1 = 1 + static_cast<int64_t>(
                       rng.Next() % uint64_t(n_vehicles * tests_per_vehicle));
  int64_t o1 = 1 + static_cast<int64_t>(
                       rng.Next() % uint64_t(n_vehicles * obs_per_vehicle));
  auto add = [&](std::string name, std::string sql, bool sf, bool bounded) {
    w.queries.push_back({std::move(name), std::move(sql), sf, bounded});
  };
  // q1-q6: scan-free and bounded (point lookups along bounded-degree keys).
  add("mot-q1",
      "SELECT v.make, v.model, t.test_date, t.test_result, t.test_mileage "
      "FROM vehicle v, mot_test t WHERE v.vehicle_id = t.vehicle_id "
      "AND v.vehicle_id = " + std::to_string(v1),
      true, true);
  add("mot-q2",
      "SELECT v.make, o.obs_date, o.speed_mph, o.road_id "
      "FROM vehicle v, observation o WHERE v.vehicle_id = o.vehicle_id "
      "AND v.vehicle_id = " + std::to_string(v2),
      true, true);
  add("mot-q3",
      "SELECT t.test_result, COUNT(*), MAX(t.test_mileage) "
      "FROM vehicle v, mot_test t WHERE v.vehicle_id = t.vehicle_id "
      "AND v.vehicle_id = " + std::to_string(v1) + " GROUP BY t.test_result",
      true, true);
  add("mot-q4",
      "SELECT t.test_date, t.test_result, v.make, v.fuel_type "
      "FROM mot_test t, vehicle v WHERE t.vehicle_id = v.vehicle_id "
      "AND t.test_id = " + std::to_string(t1),
      true, true);
  add("mot-q5",
      "SELECT o.speed_mph, o.weather, v.make, v.engine_cc "
      "FROM observation o, vehicle v WHERE o.vehicle_id = v.vehicle_id "
      "AND o.obs_id = " + std::to_string(o1),
      true, true);
  add("mot-q6",
      "SELECT v.model, SUM(t.cost), COUNT(o.obs_id) "
      "FROM vehicle v, mot_test t, observation o "
      "WHERE v.vehicle_id = t.vehicle_id AND v.vehicle_id = o.vehicle_id "
      "AND v.vehicle_id = " + std::to_string(v2) + " GROUP BY v.model",
      true, true);
  // q7-q12: no constant-equality seed -> not scan-free.
  add("mot-q7",
      "SELECT v.make, COUNT(*) FROM vehicle v GROUP BY v.make",
      false, false);
  add("mot-q8",
      "SELECT v.make, AVG(t.test_mileage) FROM vehicle v, mot_test t "
      "WHERE v.vehicle_id = t.vehicle_id AND v.first_use_year < 2005 "
      "GROUP BY v.make",
      false, false);
  add("mot-q9",
      "SELECT t.test_result, COUNT(*) FROM mot_test t "
      "WHERE t.test_date >= 14000 AND t.test_date < 14400 "
      "GROUP BY t.test_result",
      false, false);
  add("mot-q10",
      "SELECT o.region, AVG(o.speed_mph) FROM observation o "
      "WHERE o.speed_mph > 60 GROUP BY o.region",
      false, false);
  add("mot-q11",
      "SELECT v.fuel_type, AVG(t.cost) FROM vehicle v, mot_test t "
      "WHERE v.vehicle_id = t.vehicle_id AND t.test_mileage > 60000 "
      "GROUP BY v.fuel_type",
      false, false);
  add("mot-q12",
      "SELECT t.station_id, COUNT(*), AVG(t.duration_min) FROM mot_test t "
      "GROUP BY t.station_id ORDER BY t.station_id LIMIT 10",
      false, false);

  ZIDIAN_RETURN_NOT_OK(DeriveBaavSchema(&w));
  return w;
}

}  // namespace zidian
