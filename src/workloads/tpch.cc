// TPC-H dbgen-style generator (8 relations, 61 attributes) and the 22
// benchmark queries in the SPJ+aggregate form our SQL subset accepts.
// Per §9, over the derived BaaV schema queries q2, q3, q5, q7, q8, q10, q11,
// q12, q17, q19 and q21 are scan-free (seeded by constant equalities that
// chase through the join graph) and none are bounded (TPC-H's uniform data
// gives KV instances degrees comparable to relation sizes).
#include <algorithm>

#include "common/rng.h"
#include "sql/binder.h"
#include "workloads/workload.h"

namespace zidian {

namespace {

constexpr int kDateLo = 8035;   // 1992-01-01 as day number
constexpr int kDateHi = 10591;  // 1998-12-31

const char* kSegments[] = {"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY",
                           "HOUSEHOLD"};
const char* kPriorities[] = {"1-URGENT", "2-HIGH", "3-MEDIUM",
                             "4-NOT SPECIFIED", "5-LOW"};
const char* kShipModes[] = {"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL",
                            "FOB"};
const char* kContainers[] = {"SM CASE", "SM BOX", "MED BOX", "MED BAG",
                             "LG CASE", "LG BOX", "JUMBO PKG", "WRAP JAR"};
const char* kTypes[] = {"STANDARD ANODIZED TIN",  "SMALL PLATED COPPER",
                        "MEDIUM POLISHED STEEL",  "PROMO BURNISHED NICKEL",
                        "ECONOMY BRUSHED BRASS",  "LARGE ANODIZED STEEL"};
const char* kNations[] = {"ALGERIA",      "ARGENTINA", "BRAZIL",  "CANADA",
                          "EGYPT",        "ETHIOPIA",  "FRANCE",  "GERMANY",
                          "INDIA",        "INDONESIA", "IRAN",    "IRAQ",
                          "JAPAN",        "JORDAN",    "KENYA",   "MOROCCO",
                          "MOZAMBIQUE",   "PERU",      "CHINA",   "ROMANIA",
                          "SAUDI ARABIA", "VIETNAM",   "RUSSIA",  "UNITED KINGDOM",
                          "UNITED STATES"};
const char* kRegions[] = {"AFRICA", "AMERICA", "ASIA", "EUROPE",
                          "MIDDLE EAST"};
// region of each nation, aligned with kNations.
const int kNationRegion[] = {0, 1, 1, 1, 4, 0, 3, 3, 2, 2, 4, 4, 2,
                             4, 0, 0, 0, 1, 2, 3, 4, 2, 3, 3, 1};

Value I(int64_t v) { return Value(v); }
Value D(double v) { return Value(v); }
Value S(std::string v) { return Value(std::move(v)); }

TableSchema Schema(const std::string& name,
                   std::vector<std::pair<std::string, ValueType>> cols,
                   std::vector<std::string> pk) {
  std::vector<Column> columns;
  for (auto& [n, t] : cols) columns.push_back({n, t});
  return TableSchema(name, std::move(columns), std::move(pk));
}

}  // namespace

Result<Workload> MakeTpch(double sf, uint64_t seed) {
  Workload w;
  w.name = "TPC-H";
  Rng rng(seed);

  using VT = ValueType;
  ZIDIAN_RETURN_NOT_OK(w.catalog.AddTable(Schema(
      "region",
      {{"regionkey", VT::kInt}, {"name", VT::kString}, {"comment", VT::kString}},
      {"regionkey"})));
  ZIDIAN_RETURN_NOT_OK(w.catalog.AddTable(Schema(
      "nation",
      {{"nationkey", VT::kInt}, {"name", VT::kString},
       {"regionkey", VT::kInt}, {"comment", VT::kString}},
      {"nationkey"})));
  ZIDIAN_RETURN_NOT_OK(w.catalog.AddTable(Schema(
      "supplier",
      {{"suppkey", VT::kInt}, {"name", VT::kString}, {"address", VT::kString},
       {"nationkey", VT::kInt}, {"phone", VT::kString},
       {"acctbal", VT::kDouble}, {"comment", VT::kString}},
      {"suppkey"})));
  ZIDIAN_RETURN_NOT_OK(w.catalog.AddTable(Schema(
      "part",
      {{"partkey", VT::kInt}, {"name", VT::kString}, {"mfgr", VT::kString},
       {"brand", VT::kString}, {"type", VT::kString}, {"size", VT::kInt},
       {"container", VT::kString}, {"retailprice", VT::kDouble},
       {"comment", VT::kString}},
      {"partkey"})));
  ZIDIAN_RETURN_NOT_OK(w.catalog.AddTable(Schema(
      "partsupp",
      {{"partkey", VT::kInt}, {"suppkey", VT::kInt}, {"availqty", VT::kInt},
       {"supplycost", VT::kDouble}, {"comment", VT::kString}},
      {"partkey", "suppkey"})));
  ZIDIAN_RETURN_NOT_OK(w.catalog.AddTable(Schema(
      "customer",
      {{"custkey", VT::kInt}, {"name", VT::kString}, {"address", VT::kString},
       {"nationkey", VT::kInt}, {"phone", VT::kString},
       {"acctbal", VT::kDouble}, {"mktsegment", VT::kString},
       {"comment", VT::kString}},
      {"custkey"})));
  ZIDIAN_RETURN_NOT_OK(w.catalog.AddTable(Schema(
      "orders",
      {{"orderkey", VT::kInt}, {"custkey", VT::kInt},
       {"orderstatus", VT::kString}, {"totalprice", VT::kDouble},
       {"orderdate", VT::kInt}, {"orderpriority", VT::kString},
       {"clerk", VT::kString}, {"shippriority", VT::kInt},
       {"comment", VT::kString}},
      {"orderkey"})));
  ZIDIAN_RETURN_NOT_OK(w.catalog.AddTable(Schema(
      "lineitem",
      {{"orderkey", VT::kInt}, {"partkey", VT::kInt}, {"suppkey", VT::kInt},
       {"linenumber", VT::kInt}, {"quantity", VT::kDouble},
       {"extendedprice", VT::kDouble}, {"discount", VT::kDouble},
       {"tax", VT::kDouble}, {"returnflag", VT::kString},
       {"linestatus", VT::kString}, {"shipdate", VT::kInt},
       {"commitdate", VT::kInt}, {"receiptdate", VT::kInt},
       {"shipinstruct", VT::kString}, {"shipmode", VT::kString},
       {"comment", VT::kString}},
      {"orderkey", "linenumber"})));

  // Row counts: spec ratios scaled so sf=1 -> ~8.7k rows.
  auto n_of = [&](double base) {
    return std::max<int64_t>(1, static_cast<int64_t>(base * sf));
  };
  int64_t n_supp = n_of(10), n_part = n_of(200), n_ps_per_part = 4;
  int64_t n_cust = n_of(150), n_orders = n_of(1500);

  // region / nation.
  {
    Relation r({"regionkey", "name", "comment"});
    for (int64_t i = 0; i < 5; ++i) {
      r.Add({I(i), S(kRegions[i]), S(rng.NextString(12))});
    }
    w.data.emplace("region", std::move(r));
    Relation n({"nationkey", "name", "regionkey", "comment"});
    for (int64_t i = 0; i < 25; ++i) {
      n.Add({I(i), S(kNations[i]), I(kNationRegion[i]),
             S(rng.NextString(12))});
    }
    w.data.emplace("nation", std::move(n));
  }
  // supplier.
  {
    Relation s({"suppkey", "name", "address", "nationkey", "phone", "acctbal",
                "comment"});
    for (int64_t i = 1; i <= n_supp; ++i) {
      s.Add({I(i), S("Supplier#" + std::to_string(i)), S(rng.NextString(10)),
             I(rng.Uniform(0, 24)), S(rng.NextString(10)),
             D(rng.Uniform(-999, 9999) / 1.0), S(rng.NextString(12))});
    }
    w.data.emplace("supplier", std::move(s));
  }
  // part.
  {
    Relation p({"partkey", "name", "mfgr", "brand", "type", "size",
                "container", "retailprice", "comment"});
    for (int64_t i = 1; i <= n_part; ++i) {
      int m = static_cast<int>(rng.Uniform(1, 5));
      int b = static_cast<int>(rng.Uniform(1, 5));
      p.Add({I(i), S("part " + rng.NextString(8)),
             S("Manufacturer#" + std::to_string(m)),
             S("Brand#" + std::to_string(m) + std::to_string(b)),
             S(kTypes[rng.Uniform(0, 5)]), I(rng.Uniform(1, 50)),
             S(kContainers[rng.Uniform(0, 7)]),
             D(900 + static_cast<double>(i % 1000)), S(rng.NextString(10))});
    }
    w.data.emplace("part", std::move(p));
  }
  // partsupp: up to 4 distinct suppliers per part (capped by supplier count
  // so the (partkey, suppkey) primary key stays unique at tiny scales).
  int64_t supps_per_part = std::min<int64_t>(n_ps_per_part, n_supp);
  {
    Relation ps({"partkey", "suppkey", "availqty", "supplycost", "comment"});
    for (int64_t p = 1; p <= n_part; ++p) {
      for (int64_t k = 0; k < supps_per_part; ++k) {
        int64_t s = 1 + (p + k) % n_supp;
        ps.Add({I(p), I(s), I(rng.Uniform(1, 9999)),
                D(rng.Uniform(100, 100000) / 100.0), S(rng.NextString(12))});
      }
    }
    w.data.emplace("partsupp", std::move(ps));
  }
  // customer.
  {
    Relation c({"custkey", "name", "address", "nationkey", "phone", "acctbal",
                "mktsegment", "comment"});
    for (int64_t i = 1; i <= n_cust; ++i) {
      c.Add({I(i), S("Customer#" + std::to_string(i)), S(rng.NextString(10)),
             I(rng.Uniform(0, 24)), S(rng.NextString(10)),
             D(rng.Uniform(-999, 9999) / 1.0), S(kSegments[rng.Uniform(0, 4)]),
             S(rng.NextString(12))});
    }
    w.data.emplace("customer", std::move(c));
  }
  // orders + lineitem.
  {
    Relation o({"orderkey", "custkey", "orderstatus", "totalprice",
                "orderdate", "orderpriority", "clerk", "shippriority",
                "comment"});
    Relation l({"orderkey", "partkey", "suppkey", "linenumber", "quantity",
                "extendedprice", "discount", "tax", "returnflag", "linestatus",
                "shipdate", "commitdate", "receiptdate", "shipinstruct",
                "shipmode", "comment"});
    for (int64_t i = 1; i <= n_orders; ++i) {
      int64_t odate = rng.Uniform(kDateLo, kDateHi - 151);
      const char* status = rng.Chance(0.49)   ? "F"
                           : rng.Chance(0.96) ? "O"
                                              : "P";
      o.Add({I(i), I(rng.Uniform(1, n_cust)), S(status),
             D(rng.Uniform(1000, 450000) / 1.0), I(odate),
             S(kPriorities[rng.Uniform(0, 4)]),
             S("Clerk#" + std::to_string(rng.Uniform(1, 1000))), I(0),
             S(rng.NextString(12))});
      int64_t lines = rng.Uniform(1, 7);
      for (int64_t ln = 1; ln <= lines; ++ln) {
        int64_t pkey = rng.Uniform(1, n_part);
        // Pick one of the part's partsupp suppliers (referential integrity).
        int64_t skey = 1 + (pkey + rng.Uniform(0, supps_per_part - 1)) % n_supp;
        double qty = static_cast<double>(rng.Uniform(1, 50));
        double price = qty * (900 + static_cast<double>(pkey % 1000)) / 10.0;
        int64_t sdate = odate + rng.Uniform(1, 121);
        const char* rflag = sdate <= 9314 ? (rng.Chance(0.5) ? "R" : "A") : "N";
        l.Add({I(i), I(pkey), I(skey), I(ln), D(qty), D(price),
               D(rng.Uniform(0, 10) / 100.0), D(rng.Uniform(0, 8) / 100.0),
               S(rflag), S(sdate <= 9314 ? "F" : "O"), I(sdate),
               I(odate + rng.Uniform(30, 90)), I(sdate + rng.Uniform(1, 30)),
               S("DELIVER IN PERSON"), S(kShipModes[rng.Uniform(0, 6)]),
               S(rng.NextString(10))});
      }
    }
    w.data.emplace("orders", std::move(o));
    w.data.emplace("lineitem", std::move(l));
  }

  // --- the 22 queries (simplified to the SPJ+aggregate subset) -------------
  auto add = [&](std::string name, std::string sql, bool sf_free) {
    // No TPC-H query is bounded: degrees grow with the data (§9).
    w.queries.push_back({std::move(name), std::move(sql), sf_free, false});
  };
  add("q1",
      "SELECT l.returnflag, l.linestatus, SUM(l.quantity), "
      "SUM(l.extendedprice), AVG(l.discount), COUNT(*) "
      "FROM lineitem l WHERE l.shipdate <= 10471 "
      "GROUP BY l.returnflag, l.linestatus",
      false);
  add("q2",
      "SELECT s.name, s.acctbal, n.name, p.partkey, ps.supplycost "
      "FROM part p, supplier s, partsupp ps, nation n, region r "
      "WHERE p.partkey = ps.partkey AND s.suppkey = ps.suppkey "
      "AND s.nationkey = n.nationkey AND n.regionkey = r.regionkey "
      "AND r.name = 'EUROPE' AND p.size = 15",
      true);
  add("q3",
      "SELECT o.orderkey, SUM(l.extendedprice), o.orderdate "
      "FROM customer c, orders o, lineitem l "
      "WHERE c.mktsegment = 'BUILDING' AND c.custkey = o.custkey "
      "AND l.orderkey = o.orderkey AND o.orderdate < 9204 "
      "AND l.shipdate > 9204 GROUP BY o.orderkey, o.orderdate",
      true);
  add("q4",
      "SELECT o.orderpriority, COUNT(*) FROM orders o "
      "WHERE o.orderdate >= 9131 AND o.orderdate < 9223 "
      "GROUP BY o.orderpriority",
      false);
  add("q5",
      "SELECT n.name, SUM(l.extendedprice) "
      "FROM customer c, orders o, lineitem l, supplier s, nation n, region r "
      "WHERE c.custkey = o.custkey AND l.orderkey = o.orderkey "
      "AND l.suppkey = s.suppkey AND c.nationkey = s.nationkey "
      "AND s.nationkey = n.nationkey AND n.regionkey = r.regionkey "
      "AND r.name = 'ASIA' AND o.orderdate >= 9131 AND o.orderdate < 9496 "
      "GROUP BY n.name",
      true);
  add("q6",
      "SELECT SUM(l.extendedprice * l.discount) FROM lineitem l "
      "WHERE l.shipdate >= 8766 AND l.shipdate < 9131 "
      "AND l.discount >= 0.05 AND l.discount <= 0.07 AND l.quantity < 24",
      false);
  add("q7",
      "SELECT n1.name, n2.name, SUM(l.extendedprice) "
      "FROM supplier s, lineitem l, orders o, customer c, nation n1, "
      "nation n2 "
      "WHERE s.suppkey = l.suppkey AND o.orderkey = l.orderkey "
      "AND c.custkey = o.custkey AND s.nationkey = n1.nationkey "
      "AND c.nationkey = n2.nationkey AND n1.name = 'FRANCE' "
      "AND n2.name = 'GERMANY' GROUP BY n1.name, n2.name",
      true);
  add("q8",
      "SELECT o.orderdate, SUM(l.extendedprice) "
      "FROM part p, supplier s, lineitem l, orders o, nation n, region r "
      "WHERE p.partkey = l.partkey AND s.suppkey = l.suppkey "
      "AND l.orderkey = o.orderkey AND s.nationkey = n.nationkey "
      "AND n.regionkey = r.regionkey AND r.name = 'AMERICA' "
      "AND p.type = 'ECONOMY BRUSHED BRASS' GROUP BY o.orderdate",
      true);
  add("q9",
      "SELECT n.name, SUM(l.extendedprice - ps.supplycost * l.quantity) "
      "FROM part p, supplier s, lineitem l, partsupp ps, nation n "
      "WHERE s.suppkey = l.suppkey AND ps.suppkey = l.suppkey "
      "AND ps.partkey = l.partkey AND p.partkey = l.partkey "
      "AND s.nationkey = n.nationkey AND p.size > 40 GROUP BY n.name",
      false);
  add("q10",
      "SELECT c.custkey, c.name, SUM(l.extendedprice), n.name "
      "FROM customer c, orders o, lineitem l, nation n "
      "WHERE c.custkey = o.custkey AND l.orderkey = o.orderkey "
      "AND c.nationkey = n.nationkey AND l.returnflag = 'R' "
      "AND o.orderdate >= 8857 AND o.orderdate < 8948 "
      "GROUP BY c.custkey, c.name, n.name",
      true);
  add("q11",
      "SELECT ps.partkey, SUM(ps.supplycost * ps.availqty) "
      "FROM partsupp ps, supplier s, nation n "
      "WHERE ps.suppkey = s.suppkey AND s.nationkey = n.nationkey "
      "AND n.name = 'GERMANY' GROUP BY ps.partkey",
      true);
  add("q12",
      "SELECT l.shipmode, COUNT(*) FROM orders o, lineitem l "
      "WHERE o.orderkey = l.orderkey AND l.shipmode = 'MAIL' "
      "AND l.receiptdate >= 8766 AND l.receiptdate < 9131 "
      "GROUP BY l.shipmode",
      true);
  add("q13",
      "SELECT c.custkey, COUNT(*) FROM customer c, orders o "
      "WHERE c.custkey = o.custkey GROUP BY c.custkey",
      false);
  add("q14",
      "SELECT SUM(l.extendedprice * l.discount) "
      "FROM lineitem l, part p WHERE l.partkey = p.partkey "
      "AND l.shipdate >= 9374 AND l.shipdate < 9404",
      false);
  add("q15",
      "SELECT l.suppkey, SUM(l.extendedprice) FROM lineitem l "
      "WHERE l.shipdate >= 9496 AND l.shipdate < 9587 GROUP BY l.suppkey",
      false);
  add("q16",
      "SELECT p.brand, p.type, COUNT(ps.suppkey) FROM partsupp ps, part p "
      "WHERE p.partkey = ps.partkey AND p.size > 35 "
      "GROUP BY p.brand, p.type",
      false);
  add("q17",
      "SELECT AVG(l.quantity) FROM lineitem l, part p "
      "WHERE p.partkey = l.partkey AND p.brand = 'Brand#23' "
      "AND p.container = 'MED BOX'",
      true);
  add("q18",
      "SELECT c.custkey, o.orderkey, SUM(l.quantity) "
      "FROM customer c, orders o, lineitem l "
      "WHERE c.custkey = o.custkey AND o.orderkey = l.orderkey "
      "AND o.totalprice > 400000 GROUP BY c.custkey, o.orderkey",
      false);
  add("q19",
      "SELECT SUM(l.extendedprice) FROM lineitem l, part p "
      "WHERE p.partkey = l.partkey AND p.brand = 'Brand#12' "
      "AND l.quantity >= 1 AND l.quantity <= 30 AND p.size <= 15",
      true);
  add("q20",
      "SELECT s.name, s.address FROM supplier s, partsupp ps "
      "WHERE s.suppkey = ps.suppkey AND ps.availqty > 9000",
      false);
  add("q21",
      "SELECT s.name, COUNT(*) FROM supplier s, lineitem l, orders o, "
      "nation n "
      "WHERE s.suppkey = l.suppkey AND o.orderkey = l.orderkey "
      "AND o.orderstatus = 'F' AND s.nationkey = n.nationkey "
      "AND n.name = 'SAUDI ARABIA' GROUP BY s.name",
      true);
  add("q22",
      "SELECT c.nationkey, COUNT(*), SUM(c.acctbal) FROM customer c "
      "WHERE c.acctbal > 7000 GROUP BY c.nationkey",
      false);

  ZIDIAN_RETURN_NOT_OK(DeriveBaavSchema(&w));
  return w;
}

Status DeriveBaavSchema(Workload* w, double budget_multiplier) {
  std::vector<Qcs> all;
  for (const auto& q : w->queries) {
    auto spec = ParseAndBind(q.sql, w->catalog);
    if (!spec.ok()) {
      return Status::Internal("workload query " + q.name +
                              " failed to bind: " + spec.status().ToString());
    }
    auto qcs = ExtractQcs(*spec, w->catalog);
    all.insert(all.end(), qcs.begin(), qcs.end());
  }
  uint64_t data_bytes = 0;
  for (const auto& [name, rel] : w->data) data_bytes += rel.ByteSize();
  uint64_t budget =
      static_cast<uint64_t>(static_cast<double>(data_bytes) *
                            budget_multiplier);
  ZIDIAN_ASSIGN_OR_RETURN(T2BResult t2b,
                          RunT2B(w->catalog, w->data, all, budget));
  w->baav = std::move(t2b.schema);
  return Status::OK();
}

}  // namespace zidian
